//! The world node `W`.
//!
//! The world node represents every page a peer does not hold locally. Its
//! state is the set of **known in-links** from external pages into the
//! local graph: for each known external page `r` the peer stores `r`'s
//! true out-degree `out(r)`, the freshest learned authority score `α(r)`,
//! and the set of local pages `r` points to — exactly the bookkeeping the
//! paper's eq. (8) needs to weight the `W → i` transitions:
//!
//! ```text
//! p_wi = ( Σ_{r → i, r ∈ W} α(r) / out(r) ) / α_w
//! ```
//!
//! Links from external to external pages are *not* enumerated — they are
//! the world node's self-loop, whose probability `p_ww` absorbs whatever
//! the explicit `W → i` transitions do not claim (eq. 9).

use crate::config::CombineMode;
use jxp_webgraph::{PageId, Subgraph};
use std::collections::BTreeMap;

/// Knowledge about one external page that links into the local graph.
#[derive(Debug, Clone, PartialEq)]
pub struct WorldEntry {
    /// The page's true (global) out-degree, `out(r)`.
    pub out_degree: u32,
    /// The freshest learned JXP score of the page, `α(r)`.
    pub score: f64,
    /// Local pages this external page links to (sorted global ids).
    pub targets: Vec<PageId>,
}

/// The world node: all known external in-link knowledge of one peer.
///
/// Besides the linked [`WorldEntry`]s, the world node tracks known
/// **external dangling pages** (zero out-degree). The paper leaves
/// dangling pages unspecified; this reproduction uses the standard
/// treatment (dangling rank mass redistributed uniformly over all `N`
/// pages) in the centralized ground truth, so the world node must model
/// the same flow or local scores would be systematically underestimated
/// and JXP would converge to a biased fixed point (see DESIGN.md §5).
/// Peers learn about external dangling pages at meetings exactly like
/// they learn about in-links: a met peer's local dangling pages (and its
/// own dangling knowledge) ride along in the payload.
/// Both maps are `BTreeMap`s on purpose (analyzer rule D1): their
/// iteration order reaches float accumulation in
/// [`inflow`](WorldNode::inflow) / [`dangling_mass`](WorldNode::dangling_mass)
/// and the meeting payload / snapshot encoders, so it must be the same
/// on every run at every thread count. Sorted-by-`PageId` order is part
/// of the public contract of [`iter`](WorldNode::iter) and
/// [`dangling_iter`](WorldNode::dangling_iter).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WorldNode {
    entries: BTreeMap<PageId, WorldEntry>,
    /// Known external dangling pages → freshest learned score.
    dangling: BTreeMap<PageId, f64>,
}

impl WorldNode {
    /// An empty world node (a freshly initialized peer knows nothing about
    /// external in-links — paper eq. 12).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of known external source pages.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no external in-links are known yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Look up the knowledge about external page `r`.
    pub fn entry(&self, r: PageId) -> Option<&WorldEntry> {
        self.entries.get(&r)
    }

    /// Iterate over `(source page, entry)` in ascending `PageId` order.
    pub fn iter(&self) -> impl Iterator<Item = (PageId, &WorldEntry)> {
        self.entries.iter().map(|(&r, e)| (r, e))
    }

    /// Total number of stored `external → local` links.
    pub fn num_links(&self) -> usize {
        self.entries.values().map(|e| e.targets.len()).sum()
    }

    /// Insert or refresh knowledge about external page `src`.
    ///
    /// * `out_degree` — `src`'s true out-degree (must cover its links).
    /// * `score` — the sending peer's current `α(src)`; combined with any
    ///   existing knowledge per `combine` (§4.2: the optimized variant
    ///   takes the max because scores never overestimate true PR).
    /// * `targets` — local pages `src` links to; unioned with existing.
    ///
    /// # Panics
    /// Panics if `out_degree == 0` (a page with an out-link has degree ≥ 1)
    /// or `score` is not finite and non-negative.
    pub fn upsert(
        &mut self,
        src: PageId,
        out_degree: u32,
        score: f64,
        targets: impl IntoIterator<Item = PageId>,
        combine: CombineMode,
    ) {
        assert!(out_degree > 0, "external page {src:?} with zero out-degree");
        assert!(
            score.is_finite() && score >= 0.0,
            "invalid score {score} for {src:?}"
        );
        let entry = self.entries.entry(src).or_insert_with(|| WorldEntry {
            out_degree,
            score,
            targets: Vec::new(),
        });
        entry.out_degree = entry.out_degree.max(out_degree);
        entry.score = match combine {
            CombineMode::TakeMax => entry.score.max(score),
            CombineMode::Average => {
                if entry.targets.is_empty() {
                    // Fresh entry: no previous knowledge to average with.
                    score
                } else {
                    (entry.score + score) / 2.0
                }
            }
        };
        for t in targets {
            if let Err(pos) = entry.targets.binary_search(&t) {
                entry.targets.insert(pos, t);
            }
        }
        debug_assert!(
            entry.targets.len() <= entry.out_degree as usize,
            "entry {src:?} has more targets than out-degree"
        );
    }

    /// Authoritative structural update about external page `src` from a
    /// peer that holds it **locally** (and therefore knows its complete,
    /// current out-link list). Replaces any previously recorded out-degree,
    /// target set and dangling status — stale links from an older crawl of
    /// `src` are dropped, which is what keeps JXP adapting when the Web
    /// graph changes (§5.3). The *score* still combines per `combine`
    /// (freshness of authority estimates is a different matter from
    /// structural truth; see the module docs of [`crate::meeting`] for the
    /// TakeMax-under-shrinking-dynamics caveat).
    ///
    /// `targets` must be the (possibly empty) set of the *receiver's*
    /// local pages among `src`'s current successors; `out_degree` is
    /// `src`'s full current out-degree. If both are empty/zero the page is
    /// recorded as dangling.
    pub fn set_authoritative(
        &mut self,
        src: PageId,
        out_degree: u32,
        score: f64,
        targets: Vec<PageId>,
        combine: CombineMode,
    ) {
        assert!(
            score.is_finite() && score >= 0.0,
            "invalid score {score} for {src:?}"
        );
        if out_degree == 0 {
            self.entries.remove(&src);
            self.upsert_dangling(src, score, combine);
            return;
        }
        self.dangling.remove(&src);
        if targets.is_empty() {
            // The page no longer links into my fragment at all.
            self.entries.remove(&src);
            return;
        }
        debug_assert!(
            targets.windows(2).all(|w| w[0] < w[1]) || {
                // accept unsorted input defensively
                true
            }
        );
        let mut targets = targets;
        targets.sort_unstable();
        targets.dedup();
        assert!(
            targets.len() <= out_degree as usize,
            "more targets than out-degree for {src:?}"
        );
        let combined = match self.entries.get(&src) {
            Some(e) => match combine {
                CombineMode::TakeMax => e.score.max(score),
                CombineMode::Average => (e.score + score) / 2.0,
            },
            None => score,
        };
        self.entries.insert(
            src,
            WorldEntry {
                out_degree,
                score: combined,
                targets,
            },
        );
    }

    /// Record knowledge about an external **dangling** page (zero
    /// out-degree); its score combines per `combine` like any other
    /// external score.
    pub fn upsert_dangling(&mut self, page: PageId, score: f64, combine: CombineMode) {
        assert!(
            score.is_finite() && score >= 0.0,
            "invalid score {score} for dangling {page:?}"
        );
        match self.dangling.entry(page) {
            std::collections::btree_map::Entry::Vacant(v) => {
                v.insert(score);
            }
            std::collections::btree_map::Entry::Occupied(mut o) => {
                let current = *o.get();
                *o.get_mut() = match combine {
                    CombineMode::TakeMax => current.max(score),
                    CombineMode::Average => (current + score) / 2.0,
                };
            }
        }
    }

    /// Number of known external dangling pages.
    pub fn num_dangling(&self) -> usize {
        self.dangling.len()
    }

    /// Total learned score mass of known external dangling pages. Their
    /// outflow is uniform: each local page receives `dangling_mass / N`
    /// per unit of world probability (folded into
    /// [`inflow`](WorldNode::inflow)).
    pub fn dangling_mass(&self) -> f64 {
        self.dangling.values().sum()
    }

    /// Iterate over known external dangling pages in ascending
    /// `PageId` order.
    pub fn dangling_iter(&self) -> impl Iterator<Item = (PageId, f64)> + '_ {
        self.dangling.iter().map(|(&p, &s)| (p, s))
    }

    /// Re-weight every stored score by `factor` — the paper's eq. (2)
    /// update `L(i) · PR(W) / L_M(W)` for external pages, used by the
    /// `Average` combine mode after a local PageRank run.
    pub fn scale_scores(&mut self, factor: f64) {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "bad scale factor {factor}"
        );
        for e in self.entries.values_mut() {
            e.score *= factor;
        }
        for s in self.dangling.values_mut() {
            *s *= factor;
        }
    }

    /// The authority mass each local page receives from the world node
    /// per unit of world-node probability — the numerators of eq. (8):
    /// `inflow[i] = Σ_{r → pages[i]} α(r) / out(r)` indexed by the dense
    /// local index of the target in `graph`, plus the uniform
    /// `dangling_mass / n_total` share every page receives from known
    /// external dangling pages. Targets not (or no longer) local are
    /// skipped.
    pub fn inflow(&self, graph: &Subgraph, n_total: f64) -> Vec<f64> {
        let dangling_share = self.dangling_mass() / n_total;
        let mut inflow = vec![dangling_share; graph.num_pages()];
        for e in self.entries.values() {
            let per_link = e.score / e.out_degree as f64;
            for &t in &e.targets {
                if let Some(i) = graph.local_index(t) {
                    inflow[i] += per_link;
                }
            }
        }
        inflow
    }

    /// Drop entries whose source became a local page (used after full
    /// merges: `T_M = (T_A ∪ T_B) − E_M`), and restrict targets to pages
    /// that are still local; entries left without targets are removed.
    /// Dangling knowledge about now-local pages is dropped likewise.
    pub fn retain_relevant(&mut self, graph: &Subgraph) {
        self.entries.retain(|&src, e| {
            if graph.contains(src) {
                return false;
            }
            e.targets.retain(|&t| graph.contains(t));
            !e.targets.is_empty()
        });
        self.dangling.retain(|&p, _| !graph.contains(p));
    }

    /// Wire size in bytes when shipped in a meeting message: per entry one
    /// page id (4), out-degree (4), score (8), target count (4) and 4 per
    /// target; per dangling entry one id (4) and score (8).
    pub fn wire_size(&self) -> usize {
        self.entries
            .values()
            .map(|e| 4 + 4 + 8 + 4 + 4 * e.targets.len())
            .sum::<usize>()
            + self.dangling.len() * 12
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jxp_webgraph::{GraphBuilder, PageId};

    fn local_graph() -> Subgraph {
        // Global: 0→1, 1→0; local fragment = {0, 1}.
        let mut b = GraphBuilder::new();
        b.add_edge(PageId(0), PageId(1));
        b.add_edge(PageId(1), PageId(0));
        let g = b.build();
        Subgraph::from_pages(&g, [PageId(0), PageId(1)])
    }

    #[test]
    fn upsert_inserts_and_unions_targets() {
        let mut w = WorldNode::new();
        w.upsert(PageId(5), 3, 0.1, [PageId(0)], CombineMode::TakeMax);
        w.upsert(
            PageId(5),
            3,
            0.1,
            [PageId(1), PageId(0)],
            CombineMode::TakeMax,
        );
        assert_eq!(w.len(), 1);
        let e = w.entry(PageId(5)).unwrap();
        assert_eq!(e.targets, vec![PageId(0), PageId(1)]);
        assert_eq!(w.num_links(), 2);
    }

    #[test]
    fn take_max_keeps_bigger_score() {
        let mut w = WorldNode::new();
        w.upsert(PageId(5), 2, 0.10, [PageId(0)], CombineMode::TakeMax);
        w.upsert(PageId(5), 2, 0.05, [PageId(0)], CombineMode::TakeMax);
        assert_eq!(w.entry(PageId(5)).unwrap().score, 0.10);
        w.upsert(PageId(5), 2, 0.20, [PageId(0)], CombineMode::TakeMax);
        assert_eq!(w.entry(PageId(5)).unwrap().score, 0.20);
    }

    #[test]
    fn average_mode_averages_scores() {
        let mut w = WorldNode::new();
        w.upsert(PageId(5), 2, 0.10, [PageId(0)], CombineMode::Average);
        w.upsert(PageId(5), 2, 0.30, [PageId(0)], CombineMode::Average);
        assert!((w.entry(PageId(5)).unwrap().score - 0.20).abs() < 1e-12);
    }

    #[test]
    fn inflow_weights_by_score_over_outdegree() {
        let g = local_graph();
        let mut w = WorldNode::new();
        // Page 7: α = 0.2, out-degree 4, links to local 0 and 1.
        w.upsert(
            PageId(7),
            4,
            0.2,
            [PageId(0), PageId(1)],
            CombineMode::TakeMax,
        );
        // Page 9: α = 0.1, out-degree 2, links to local 1.
        w.upsert(PageId(9), 2, 0.1, [PageId(1)], CombineMode::TakeMax);
        let inflow = w.inflow(&g, 100.0);
        assert!((inflow[0] - 0.05).abs() < 1e-12); // 0.2/4
        assert!((inflow[1] - (0.05 + 0.05)).abs() < 1e-12); // 0.2/4 + 0.1/2
    }

    #[test]
    fn inflow_skips_non_local_targets() {
        let g = local_graph();
        let mut w = WorldNode::new();
        w.upsert(
            PageId(7),
            2,
            0.2,
            [PageId(0), PageId(42)],
            CombineMode::TakeMax,
        );
        let inflow = w.inflow(&g, 100.0);
        assert!((inflow[0] - 0.1).abs() < 1e-12);
        assert_eq!(inflow.len(), 2);
    }

    #[test]
    fn retain_relevant_prunes_local_sources_and_dead_targets() {
        let g = local_graph();
        let mut w = WorldNode::new();
        w.upsert(PageId(0), 2, 0.2, [PageId(1)], CombineMode::TakeMax); // now local
        w.upsert(PageId(7), 2, 0.1, [PageId(42)], CombineMode::TakeMax); // dead target
        w.upsert(
            PageId(8),
            2,
            0.1,
            [PageId(0), PageId(42)],
            CombineMode::TakeMax,
        );
        w.retain_relevant(&g);
        assert_eq!(w.len(), 1);
        assert_eq!(w.entry(PageId(8)).unwrap().targets, vec![PageId(0)]);
    }

    #[test]
    fn scale_scores() {
        let mut w = WorldNode::new();
        w.upsert(PageId(7), 2, 0.2, [PageId(0)], CombineMode::TakeMax);
        w.scale_scores(0.5);
        assert!((w.entry(PageId(7)).unwrap().score - 0.1).abs() < 1e-12);
    }

    #[test]
    fn wire_size_grows_with_knowledge() {
        let mut w = WorldNode::new();
        let empty = w.wire_size();
        w.upsert(PageId(7), 2, 0.2, [PageId(0)], CombineMode::TakeMax);
        let one = w.wire_size();
        assert!(one > empty);
        w.upsert(PageId(7), 2, 0.2, [PageId(1)], CombineMode::TakeMax);
        assert_eq!(w.wire_size(), one + 4);
    }

    #[test]
    fn set_authoritative_replaces_stale_links() {
        let mut w = WorldNode::new();
        w.upsert(
            PageId(7),
            5,
            0.1,
            [PageId(0), PageId(1)],
            CombineMode::TakeMax,
        );
        // Fresh crawl of page 7: it now has 2 out-links, only one into me.
        w.set_authoritative(PageId(7), 2, 0.05, vec![PageId(1)], CombineMode::TakeMax);
        let e = w.entry(PageId(7)).unwrap();
        assert_eq!(e.out_degree, 2);
        assert_eq!(e.targets, vec![PageId(1)]);
        // Score still combines (TakeMax keeps the bigger one).
        assert_eq!(e.score, 0.1);
    }

    #[test]
    fn set_authoritative_handles_dangling_transitions() {
        let mut w = WorldNode::new();
        // Page 7 links to me …
        w.set_authoritative(PageId(7), 1, 0.1, vec![PageId(0)], CombineMode::TakeMax);
        assert_eq!(w.len(), 1);
        assert_eq!(w.num_dangling(), 0);
        // … then loses all its out-links (becomes dangling) …
        w.set_authoritative(PageId(7), 0, 0.1, vec![], CombineMode::TakeMax);
        assert_eq!(w.len(), 0);
        assert_eq!(w.num_dangling(), 1);
        // … then gains links again, none into me.
        w.set_authoritative(PageId(7), 3, 0.1, vec![], CombineMode::TakeMax);
        assert_eq!(w.len(), 0);
        assert_eq!(w.num_dangling(), 0);
    }

    #[test]
    fn dangling_mass_feeds_uniform_inflow() {
        let g = local_graph();
        let mut w = WorldNode::new();
        w.upsert_dangling(PageId(9), 0.3, CombineMode::TakeMax);
        let inflow = w.inflow(&g, 10.0);
        // Each local page gets dangling_mass / N = 0.03.
        assert!((inflow[0] - 0.03).abs() < 1e-12);
        assert!((inflow[1] - 0.03).abs() < 1e-12);
        assert!((w.dangling_mass() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn dangling_scores_combine_per_mode() {
        let mut w = WorldNode::new();
        w.upsert_dangling(PageId(9), 0.2, CombineMode::TakeMax);
        w.upsert_dangling(PageId(9), 0.1, CombineMode::TakeMax);
        assert_eq!(w.dangling_iter().next().unwrap().1, 0.2);
        let mut w2 = WorldNode::new();
        w2.upsert_dangling(PageId(9), 0.2, CombineMode::Average);
        w2.upsert_dangling(PageId(9), 0.1, CombineMode::Average);
        assert!((w2.dangling_iter().next().unwrap().1 - 0.15).abs() < 1e-12);
    }

    #[test]
    fn iteration_order_is_ascending_regardless_of_insertion_order() {
        // Regression test for the determinism contract: however entries
        // arrive (meetings happen in arbitrary order), iter() and
        // dangling_iter() must yield ascending PageIds so payload
        // assembly, snapshots, and inflow accumulation are replayable.
        let mut w = WorldNode::new();
        for src in [97u32, 3, 55, 12, 88, 1, 42] {
            w.upsert(PageId(src), 2, 0.1, [PageId(0)], CombineMode::TakeMax);
        }
        for p in [66u32, 5, 31] {
            w.upsert_dangling(PageId(p), 0.1, CombineMode::TakeMax);
        }
        let order: Vec<PageId> = w.iter().map(|(s, _)| s).collect();
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(order, sorted);
        assert_eq!(order.len(), 7);
        let d_order: Vec<PageId> = w.dangling_iter().map(|(p, _)| p).collect();
        let mut d_sorted = d_order.clone();
        d_sorted.sort_unstable();
        assert_eq!(d_order, d_sorted);
    }

    #[test]
    fn inflow_is_bitwise_stable_across_insertion_orders() {
        // Float accumulation order must not depend on how knowledge was
        // learned: two peers that learned the same facts in different
        // meeting orders must compute bit-identical inflow vectors.
        let g = local_graph();
        let facts: Vec<(u32, u32, f64)> =
            vec![(7, 4, 0.2), (9, 2, 0.1), (13, 8, 0.05), (21, 3, 0.07)];
        let mut forward = WorldNode::new();
        for &(src, deg, score) in &facts {
            forward.upsert(
                PageId(src),
                deg,
                score,
                [PageId(0), PageId(1)],
                CombineMode::TakeMax,
            );
        }
        let mut reverse = WorldNode::new();
        for &(src, deg, score) in facts.iter().rev() {
            reverse.upsert(
                PageId(src),
                deg,
                score,
                [PageId(0), PageId(1)],
                CombineMode::TakeMax,
            );
        }
        let a = forward.inflow(&g, 100.0);
        let b = reverse.inflow(&g, 100.0);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_bits(), y.to_bits(), "inflow differs bitwise");
        }
    }

    #[test]
    #[should_panic(expected = "zero out-degree")]
    fn zero_out_degree_rejected() {
        let mut w = WorldNode::new();
        w.upsert(PageId(7), 0, 0.2, [PageId(0)], CombineMode::TakeMax);
    }

    #[test]
    #[should_panic(expected = "invalid score")]
    fn nan_score_rejected() {
        let mut w = WorldNode::new();
        w.upsert(PageId(7), 1, f64::NAN, [PageId(0)], CombineMode::TakeMax);
    }
}
