//! The message a peer sends when meeting another peer.
//!
//! §3: peers "exchange the information they currently have, namely the
//! extended local graph and the score list". The payload therefore carries
//! the sender's local pages with their full out-link lists and current JXP
//! scores, the sender's world-node entries, and the sender's world-node
//! score. Crucially it carries **no page content** — the paper's
//! bandwidth argument (§6.2, Figures 11/12) rests on exactly this, and
//! [`MeetingPayload::wire_size`] is what those figures measure.

use crate::world::WorldNode;
use jxp_webgraph::{PageId, Subgraph};

/// Knowledge about one of the sender's local pages.
#[derive(Debug, Clone, PartialEq)]
pub struct PagePayload {
    /// The page's global id.
    pub page: PageId,
    /// The sender's current JXP score for it.
    pub score: f64,
    /// The page's complete out-link list (global ids) — the receiver
    /// derives both `out(page)` and the links into its own fragment.
    pub succs: Vec<PageId>,
}

/// Knowledge about one external page relayed from the sender's world node.
#[derive(Debug, Clone, PartialEq)]
pub struct WorldPayload {
    /// The external source page.
    pub src: PageId,
    /// Its true out-degree.
    pub out_degree: u32,
    /// The sender's learned score for it.
    pub score: f64,
    /// The link targets the sender knows (pages of the *sender's*
    /// fragment; relevant to the receiver when fragments overlap).
    pub targets: Vec<PageId>,
}

/// Everything one peer sends to another in a meeting.
#[derive(Debug, Clone, PartialEq)]
pub struct MeetingPayload {
    /// The sender's local pages: scores and full out-link lists.
    pub pages: Vec<PagePayload>,
    /// The sender's world-node entries.
    pub world: Vec<WorldPayload>,
    /// External dangling pages the sender knows about, with scores.
    /// (The sender's *local* dangling pages already appear in `pages`
    /// with an empty successor list.)
    pub world_dangling: Vec<(PageId, f64)>,
    /// The sender's current world-node score `α_w`.
    pub world_score: f64,
}

impl MeetingPayload {
    /// Assemble the payload from a peer's state.
    pub fn assemble(graph: &Subgraph, world: &WorldNode, scores: &[f64], world_score: f64) -> Self {
        assert_eq!(graph.num_pages(), scores.len(), "score list out of sync");
        let pages = (0..graph.num_pages())
            .map(|i| PagePayload {
                page: graph.page_at(i),
                score: scores[i],
                succs: graph.successors_at(i).to_vec(),
            })
            .collect();
        // WorldNode iterates in ascending PageId order (documented
        // contract), so the payload is deterministic without re-sorting.
        let world_entries: Vec<WorldPayload> = world
            .iter()
            .map(|(src, e)| WorldPayload {
                src,
                out_degree: e.out_degree,
                score: e.score,
                targets: e.targets.clone(),
            })
            .collect();
        let world_dangling: Vec<(PageId, f64)> = world.dangling_iter().collect();
        MeetingPayload {
            pages,
            world: world_entries,
            world_dangling,
            world_score,
        }
    }

    /// Sanity-check a payload received from an untrusted peer.
    ///
    /// The paper closes with the open problem of "egoistic, cheating, and
    /// malicious peers" (§7). Full strategic-lying detection is out of
    /// scope there and here, but a peer can and should reject *malformed*
    /// payloads before absorbing them: non-finite or negative scores,
    /// scores that exceed the total PageRank mass, a local score list that
    /// claims more than the whole network's authority, or duplicate page
    /// records. Returns a description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        let valid_score = |s: f64| s.is_finite() && (0.0..=1.0).contains(&s);
        if !valid_score(self.world_score) {
            return Err(format!("world score {} out of [0, 1]", self.world_score));
        }
        let mut total = 0.0;
        let mut last: Option<PageId> = None;
        let mut sorted = true;
        for pp in &self.pages {
            if !valid_score(pp.score) {
                return Err(format!("page {:?} has invalid score {}", pp.page, pp.score));
            }
            total += pp.score;
            if let Some(prev) = last {
                sorted &= prev < pp.page;
            }
            last = Some(pp.page);
        }
        if !sorted {
            return Err("page records not sorted / contain duplicates".into());
        }
        if total > 1.0 + 1e-6 {
            return Err(format!("local score list claims total mass {total} > 1"));
        }
        for wp in &self.world {
            if !valid_score(wp.score) {
                return Err(format!(
                    "world entry {:?} has invalid score {}",
                    wp.src, wp.score
                ));
            }
            if wp.out_degree == 0 {
                return Err(format!("world entry {:?} with zero out-degree", wp.src));
            }
            if wp.targets.len() > wp.out_degree as usize {
                return Err(format!(
                    "world entry {:?} claims more targets than out-degree",
                    wp.src
                ));
            }
        }
        for &(p, s) in &self.world_dangling {
            if !valid_score(s) {
                return Err(format!("dangling entry {p:?} has invalid score {s}"));
            }
        }
        Ok(())
    }

    /// Serialized size in bytes: the quantity plotted in Figures 11/12.
    ///
    /// Accounting: 4 bytes per page id, 8 per score, 4 per out-degree or
    /// list length, 8 for the world score, 12 for the three section
    /// lengths (pages, world, dangling). This is exactly the length of the
    /// `jxp-wire` frame *body* encoding the payload — pinned by a test in
    /// `crates/wire` — so Figures 11/12 report measured bytes; the codec's
    /// fixed 12-byte frame header is the only residual delta.
    pub fn wire_size(&self) -> usize {
        let pages: usize = self
            .pages
            .iter()
            .map(|p| 4 + 8 + 4 + 4 * p.succs.len())
            .sum();
        let world: usize = self
            .world
            .iter()
            .map(|w| 4 + 4 + 8 + 4 + 4 * w.targets.len())
            .sum();
        8 + 12 + pages + world + self.world_dangling.len() * 12
    }

    /// Number of local pages described.
    pub fn num_pages(&self) -> usize {
        self.pages.len()
    }

    /// Total links carried (page out-links plus world-entry links).
    pub fn num_links(&self) -> usize {
        self.pages.iter().map(|p| p.succs.len()).sum::<usize>()
            + self.world.iter().map(|w| w.targets.len()).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CombineMode;
    use jxp_webgraph::GraphBuilder;

    fn fragment() -> Subgraph {
        let mut b = GraphBuilder::new();
        b.add_edge(PageId(0), PageId(1));
        b.add_edge(PageId(1), PageId(5)); // external target
        let g = b.build();
        Subgraph::from_pages(&g, [PageId(0), PageId(1)])
    }

    #[test]
    fn assemble_captures_pages_and_world() {
        let graph = fragment();
        let mut world = WorldNode::new();
        world.upsert(PageId(9), 3, 0.2, [PageId(0)], CombineMode::TakeMax);
        let p = MeetingPayload::assemble(&graph, &world, &[0.4, 0.3], 0.3);
        assert_eq!(p.num_pages(), 2);
        assert_eq!(p.pages[0].page, PageId(0));
        assert_eq!(p.pages[0].succs, vec![PageId(1)]);
        assert_eq!(p.pages[1].succs, vec![PageId(5)]);
        assert_eq!(p.world.len(), 1);
        assert_eq!(p.world[0].src, PageId(9));
        assert_eq!(p.world_score, 0.3);
        assert_eq!(p.num_links(), 3);
    }

    #[test]
    fn wire_size_matches_accounting() {
        let graph = fragment();
        let world = WorldNode::new();
        let p = MeetingPayload::assemble(&graph, &world, &[0.4, 0.3], 0.3);
        // Two pages, one succ each: 2 × (4+8+4+4) = 40; world score plus
        // three section lengths: 8 + 12 = 20.
        assert_eq!(p.wire_size(), 20 + 40);
    }

    #[test]
    fn world_entries_are_sorted() {
        let graph = fragment();
        let mut world = WorldNode::new();
        for src in [9u32, 3, 7] {
            world.upsert(PageId(src), 1, 0.1, [PageId(0)], CombineMode::TakeMax);
        }
        let p = MeetingPayload::assemble(&graph, &world, &[0.4, 0.3], 0.3);
        let srcs: Vec<u32> = p.world.iter().map(|w| w.src.0).collect();
        assert_eq!(srcs, vec![3, 7, 9]);
    }

    #[test]
    fn honest_payload_validates() {
        let graph = fragment();
        let mut world = WorldNode::new();
        world.upsert(PageId(9), 3, 0.2, [PageId(0)], CombineMode::TakeMax);
        world.upsert_dangling(PageId(11), 0.05, CombineMode::TakeMax);
        let p = MeetingPayload::assemble(&graph, &world, &[0.4, 0.3], 0.3);
        p.validate().unwrap();
    }

    #[test]
    fn malicious_payloads_are_rejected() {
        let graph = fragment();
        let world = WorldNode::new();
        let honest = MeetingPayload::assemble(&graph, &world, &[0.4, 0.3], 0.3);

        // Inflated single score.
        let mut evil = honest.clone();
        evil.pages[0].score = 5.0;
        assert!(evil.validate().is_err());

        // NaN score.
        let mut evil = honest.clone();
        evil.pages[1].score = f64::NAN;
        assert!(evil.validate().is_err());

        // Claims more total mass than exists.
        let mut evil = honest.clone();
        evil.pages[0].score = 0.9;
        evil.pages[1].score = 0.9;
        assert!(evil.validate().is_err());

        // Duplicate page records.
        let mut evil = honest.clone();
        let dup = evil.pages[0].clone();
        evil.pages.insert(1, dup);
        assert!(evil.validate().is_err());

        // World entry with impossible structure.
        let mut evil = honest.clone();
        evil.world.push(WorldPayload {
            src: PageId(9),
            out_degree: 1,
            score: 0.1,
            targets: vec![PageId(0), PageId(1)],
        });
        assert!(evil.validate().is_err());

        // Bad world score.
        let mut evil = honest.clone();
        evil.world_score = -0.2;
        assert!(evil.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "out of sync")]
    fn mismatched_score_list_panics() {
        let graph = fragment();
        let world = WorldNode::new();
        let _ = MeetingPayload::assemble(&graph, &world, &[0.4], 0.3);
    }
}
