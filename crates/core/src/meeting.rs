//! Peer meetings (Algorithm 2 / Algorithm 3).
//!
//! A meeting is a symmetric exchange: both peers ship their payload
//! (extended local graph + score list) and both fold the other's knowledge
//! into their own state, "asynchronously and independently of each other"
//! (§3). [`MeetingStats`] records what the experiments need: the bytes on
//! the wire (Figures 11/12) and the per-side CPU time of the merge +
//! recompute step (Table 1).
//!
//! **Dynamics caveat**: structural knowledge (link sets, out-degrees,
//! dangling status) is updated *authoritatively* when the sender holds the
//! page locally, so the network adapts when the Web graph changes. Learned
//! *scores*, however, combine per [`CombineMode`](crate::CombineMode):
//! under `TakeMax` a bookkeeping score can never decrease, which is
//! exactly right in a static network (Theorem 5.3) but adapts slowly when
//! a page's true authority *shrinks* (e.g. it loses in-links). For
//! workloads with heavy graph dynamics prefer `CombineMode::Average`,
//! whose repeated averaging against fresh opinions forgets stale highs.
//! The paper leaves convergence under dynamics open (§5.3, §7).

use crate::payload::MeetingPayload;
use crate::peer::JxpPeer;
use std::time::{Duration, Instant};

/// Measurements of one meeting.
#[derive(Debug, Clone)]
pub struct MeetingStats {
    /// Bytes sent from the first peer to the second.
    pub bytes_a_to_b: usize,
    /// Bytes sent from the second peer to the first.
    pub bytes_b_to_a: usize,
    /// CPU time of the first peer's merge + recompute step.
    pub merge_time_a: Duration,
    /// CPU time of the second peer's merge + recompute step.
    pub merge_time_b: Duration,
}

impl MeetingStats {
    /// Total bytes exchanged in both directions.
    pub fn total_bytes(&self) -> usize {
        self.bytes_a_to_b + self.bytes_b_to_a
    }
}

/// Perform one JXP meeting between two peers: exchange payloads, absorb on
/// both sides (per each peer's own [`MergeMode`](crate::MergeMode) — peers
/// are autonomous and may run different configurations), recompute.
pub fn meet(a: &mut JxpPeer, b: &mut JxpPeer) -> MeetingStats {
    let payload_a = a.payload();
    let payload_b = b.payload();
    let stats = MeetingStats {
        bytes_a_to_b: payload_a.wire_size(),
        bytes_b_to_a: payload_b.wire_size(),
        merge_time_a: Duration::ZERO,
        merge_time_b: Duration::ZERO,
    };
    let t0 = Instant::now();
    a.absorb(&payload_b);
    let merge_time_a = t0.elapsed();
    let t1 = Instant::now();
    b.absorb(&payload_a);
    let merge_time_b = t1.elapsed();
    MeetingStats {
        merge_time_a,
        merge_time_b,
        ..stats
    }
}

/// One-directional meeting: only `a` learns from `b` (used when modelling
/// an unreachable or departing peer that can still be read from, and by
/// tests that need asymmetric knowledge).
pub fn meet_one_way(a: &mut JxpPeer, b: &JxpPeer) -> MeetingStats {
    let payload_b = b.payload();
    let bytes = payload_b.wire_size();
    let t0 = Instant::now();
    a.absorb(&payload_b);
    MeetingStats {
        bytes_a_to_b: 0,
        bytes_b_to_a: bytes,
        merge_time_a: t0.elapsed(),
        merge_time_b: Duration::ZERO,
    }
}

/// Deliver an explicit payload to a peer (used by the network simulator
/// when payloads travel through its message layer).
pub fn deliver(to: &mut JxpPeer, payload: &MeetingPayload) -> Duration {
    let t0 = Instant::now();
    to.absorb(payload);
    t0.elapsed()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::JxpConfig;
    use jxp_webgraph::{GraphBuilder, PageId, Subgraph};

    fn two_peers() -> (JxpPeer, JxpPeer) {
        let mut b = GraphBuilder::new();
        for (s, d) in [(0, 1), (1, 2), (2, 3), (3, 0)] {
            b.add_edge(PageId(s), PageId(d));
        }
        let g = b.build();
        let pa = JxpPeer::new(
            Subgraph::from_pages(&g, [PageId(0), PageId(1)]),
            4,
            JxpConfig::default(),
        );
        let pb = JxpPeer::new(
            Subgraph::from_pages(&g, [PageId(2), PageId(3)]),
            4,
            JxpConfig::default(),
        );
        (pa, pb)
    }

    #[test]
    fn meet_updates_both_sides() {
        let (mut a, mut b) = two_peers();
        let stats = meet(&mut a, &mut b);
        assert!(!a.world().is_empty());
        assert!(!b.world().is_empty());
        assert_eq!(a.stats().meetings, 1);
        assert_eq!(b.stats().meetings, 1);
        assert!(stats.bytes_a_to_b > 0);
        assert!(stats.bytes_b_to_a > 0);
        assert_eq!(stats.total_bytes(), stats.bytes_a_to_b + stats.bytes_b_to_a);
    }

    #[test]
    fn repeated_meetings_approach_global_pagerank() {
        let (mut a, mut b) = two_peers();
        for _ in 0..15 {
            meet(&mut a, &mut b);
        }
        // 4-cycle: every true score is 1/4.
        for p in [PageId(0), PageId(1)] {
            let s = a.score(p).unwrap();
            assert!((s - 0.25).abs() < 0.01, "{p:?} score {s}");
        }
        for p in [PageId(2), PageId(3)] {
            let s = b.score(p).unwrap();
            assert!((s - 0.25).abs() < 0.01, "{p:?} score {s}");
        }
    }

    #[test]
    fn one_way_meeting_only_updates_receiver() {
        let (mut a, b) = two_peers();
        let b_world_before = b.world().len();
        let stats = meet_one_way(&mut a, &b);
        assert!(!a.world().is_empty());
        assert_eq!(b.world().len(), b_world_before);
        assert_eq!(stats.bytes_a_to_b, 0);
        assert!(stats.bytes_b_to_a > 0);
    }

    #[test]
    fn message_size_grows_with_world_knowledge() {
        let (mut a, mut b) = two_peers();
        let first = meet(&mut a, &mut b);
        let second = meet(&mut a, &mut b);
        // After the first meeting both peers carry world entries, so the
        // second exchange ships strictly more bytes.
        assert!(second.bytes_a_to_b > first.bytes_a_to_b);
        assert!(second.bytes_b_to_a > first.bytes_b_to_a);
    }

    #[test]
    fn deliver_applies_a_detached_payload() {
        let (mut a, b) = two_peers();
        let payload = b.payload();
        let elapsed = deliver(&mut a, &payload);
        assert!(!a.world().is_empty());
        assert_eq!(a.stats().meetings, 1);
        assert!(elapsed.as_nanos() > 0);
    }

    #[test]
    fn try_absorb_rejects_tampered_payload_without_state_change() {
        let (mut a, b) = two_peers();
        let mut evil = b.payload();
        evil.pages[0].score = 42.0;
        let scores_before = a.scores().to_vec();
        let world_before = a.world_score();
        assert!(a.try_absorb(&evil).is_err());
        assert_eq!(a.scores(), &scores_before[..]);
        assert_eq!(a.world_score(), world_before);
        assert_eq!(a.stats().meetings, 0);
        // The honest payload still goes through.
        a.try_absorb(&b.payload()).unwrap();
        assert_eq!(a.stats().meetings, 1);
    }

    #[test]
    fn mixed_merge_modes_interoperate() {
        let mut builder = GraphBuilder::new();
        for (s, d) in [(0, 1), (1, 2), (2, 0)] {
            builder.add_edge(PageId(s), PageId(d));
        }
        let g = builder.build();
        let mut full = JxpPeer::new(
            Subgraph::from_pages(&g, [PageId(0)]),
            3,
            JxpConfig::baseline(),
        );
        let mut light = JxpPeer::new(
            Subgraph::from_pages(&g, [PageId(1), PageId(2)]),
            3,
            JxpConfig::default(),
        );
        for _ in 0..10 {
            meet(&mut full, &mut light);
        }
        let total = full.local_mass() + full.world_score();
        assert!((total - 1.0).abs() < 1e-9);
        assert!((full.score(PageId(0)).unwrap() - 1.0 / 3.0).abs() < 0.02);
    }
}
