//! Property tests: every frame type must survive encode → decode
//! unchanged, report its length exactly, and the decoder must reject
//! truncations and version clobbering at every position.

use jxp_core::payload::{MeetingPayload, PagePayload, WorldPayload};
use jxp_core::selection::PeerSynopses;
use jxp_synopses::bloom::BloomFilter;
use jxp_synopses::fm_sketch::FmSketch;
use jxp_synopses::mips::MipsVector;
use jxp_webgraph::PageId;
use jxp_wire::{
    decode_frame, encode_frame, encoded_len, ErrorCode, Frame, FrameAccumulator, QueryHit,
    QueryPayload, QueryReplyPayload, StatsPayload, SynopsisPayload, WireError, HEADER_LEN, MAGIC,
    MAX_BODY_LEN,
};
use proptest::collection::vec;
use proptest::prelude::*;

fn page_ids() -> impl Strategy<Value = Vec<PageId>> {
    vec(0u32..50_000, 0..6).prop_map(|v| v.into_iter().map(PageId).collect())
}

fn meeting_payloads() -> impl Strategy<Value = MeetingPayload> {
    let pages = vec((0u32..50_000, -1.0f64..1.0, page_ids()), 0..5).prop_map(|entries| {
        entries
            .into_iter()
            .map(|(page, score, succs)| PagePayload {
                page: PageId(page),
                score,
                succs,
            })
            .collect::<Vec<_>>()
    });
    let world =
        vec((0u32..50_000, 0u32..100, -1.0f64..1.0, page_ids()), 0..5).prop_map(|entries| {
            entries
                .into_iter()
                .map(|(src, out_degree, score, targets)| WorldPayload {
                    src: PageId(src),
                    out_degree,
                    score,
                    targets,
                })
                .collect::<Vec<_>>()
        });
    let dangling = vec((0u32..50_000, 0.0f64..1.0), 0..4).prop_map(|entries| {
        entries
            .into_iter()
            .map(|(p, s)| (PageId(p), s))
            .collect::<Vec<_>>()
    });
    (pages, world, dangling, 0.0f64..1.0).prop_map(|(pages, world, world_dangling, world_score)| {
        MeetingPayload {
            pages,
            world,
            world_dangling,
            world_score,
        }
    })
}

fn mips_vectors() -> impl Strategy<Value = MipsVector> {
    (vec(0u64..u64::MAX, 1..40), 0u64..10_000)
        .prop_map(|(mins, count)| MipsVector::from_parts(mins, count))
}

fn synopsis_payloads() -> impl Strategy<Value = SynopsisPayload> {
    let optional_sketch = (0u8..2, vec(0u64..u64::MAX, 1..16))
        .prop_map(|(on, bitmaps)| (on == 1).then(|| FmSketch::from_bitmaps(bitmaps)));
    let optional_bloom = (0u8..2, vec(0u64..u64::MAX, 1..16), 1u32..8, 0u64..1000).prop_map(
        |(on, bits, hashes, inserted)| {
            (on == 1).then(|| BloomFilter::from_parts(bits, hashes, inserted))
        },
    );
    (
        mips_vectors(),
        mips_vectors(),
        optional_sketch,
        optional_bloom,
    )
        .prop_map(|(local, successors, sketch, bloom)| SynopsisPayload {
            synopses: PeerSynopses { local, successors },
            sketch,
            bloom,
        })
}

fn stats_payloads() -> impl Strategy<Value = StatsPayload> {
    vec(0u64..u64::MAX, 8).prop_map(|f| StatsPayload {
        node_id: f[0],
        meetings_attempted: f[1],
        meetings_completed: f[2],
        meetings_failed: f[3],
        meetings_served: f[4],
        retries: f[5],
        bytes_in: f[6],
        bytes_out: f[7],
    })
}

fn query_payloads() -> impl Strategy<Value = QueryPayload> {
    (0u64..u64::MAX, 0u32..1000, vec(0u32..100_000, 0..12))
        .prop_map(|(query_id, k, terms)| QueryPayload { query_id, k, terms })
}

fn query_replies() -> impl Strategy<Value = QueryReplyPayload> {
    let hits = vec((0u32..50_000, 0.0f64..100.0, 0.0f64..2.0), 0..10).prop_map(|entries| {
        entries
            .into_iter()
            .map(|(page, tfidf, fused)| QueryHit {
                page: PageId(page),
                tfidf,
                fused,
            })
            .collect::<Vec<_>>()
    });
    (0u64..u64::MAX, 0u64..u64::MAX, 0u64..100_000, 0u8..2, hits).prop_map(
        |(node_id, query_id, epoch, cached, hits)| QueryReplyPayload {
            node_id,
            query_id,
            epoch,
            cached: cached == 1,
            hits,
        },
    )
}

/// One strategy covering every frame type: the selector picks a variant
/// and the components feed it.
fn frames() -> impl Strategy<Value = Frame> {
    (
        0u8..10,
        (0u64..u64::MAX, 0u64..1_000_000),
        meeting_payloads(),
        synopsis_payloads(),
        0u8..=255,
        vec(32u8..127, 0..40),
        stats_payloads(),
        (query_payloads(), query_replies()),
    )
        .prop_map(
            |(
                selector,
                (node_id, num_pages),
                meeting,
                synopsis,
                ack_of,
                detail,
                stats,
                (query, reply),
            )| {
                match selector {
                    0 => Frame::Hello { node_id, num_pages },
                    1 => Frame::MeetRequest(meeting),
                    2 => Frame::MeetReply(meeting),
                    3 => Frame::SynopsisExchange(synopsis),
                    4 => Frame::Ack { of: ack_of },
                    5 => Frame::StatsRequest,
                    6 => Frame::StatsReply(stats),
                    7 => Frame::QueryRequest(query),
                    8 => Frame::QueryReply(reply),
                    _ => Frame::Error {
                        code: ErrorCode::Busy,
                        detail: String::from_utf8(detail).unwrap(),
                    },
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn every_frame_roundtrips(frame in frames()) {
        let bytes = encode_frame(&frame);
        prop_assert_eq!(bytes.len(), encoded_len(&frame));
        let (decoded, consumed) = decode_frame(&bytes).expect("decode");
        prop_assert_eq!(consumed, bytes.len());
        prop_assert_eq!(decoded, frame);
    }

    #[test]
    fn every_truncation_is_rejected(frame in frames(), cut in 0.0f64..1.0) {
        let bytes = encode_frame(&frame);
        // Cut anywhere strictly before the end, header included.
        let keep = (bytes.len() as f64 * cut) as usize;
        prop_assert!(keep < bytes.len());
        match decode_frame(&bytes[..keep]) {
            Err(WireError::Truncated { needed, got }) => {
                prop_assert_eq!(got, keep);
                // The reported requirement never exceeds the true frame
                // length and always asks for more than we gave.
                prop_assert!(needed > keep);
                prop_assert!(needed <= bytes.len());
            }
            other => prop_assert!(false, "expected Truncated, got {:?}", other),
        }
    }

    #[test]
    fn wrong_version_is_rejected(frame in frames(), version in 0u16..1000) {
        let mut bytes = encode_frame(&frame);
        let bad = if version == jxp_wire::PROTOCOL_VERSION { version + 1 } else { version };
        bytes[4..6].copy_from_slice(&bad.to_le_bytes());
        match decode_frame(&bytes) {
            Err(WireError::VersionMismatch { got, expected }) => {
                prop_assert_eq!(got, bad);
                prop_assert_eq!(expected, jxp_wire::PROTOCOL_VERSION);
            }
            other => prop_assert!(false, "expected VersionMismatch, got {:?}", other),
        }
    }

    #[test]
    fn meeting_body_length_always_matches_wire_size(payload in meeting_payloads()) {
        let frame = Frame::MeetRequest(payload);
        let bytes = encode_frame(&frame);
        if let Frame::MeetRequest(p) = &frame {
            prop_assert_eq!(bytes.len(), HEADER_LEN + p.wire_size());
        }
    }

    #[test]
    fn query_body_lengths_always_match_wire_size(
        query in query_payloads(),
        reply in query_replies(),
    ) {
        let bytes = encode_frame(&Frame::QueryRequest(query.clone()));
        prop_assert_eq!(bytes.len(), HEADER_LEN + query.wire_size());
        let bytes = encode_frame(&Frame::QueryReply(reply.clone()));
        prop_assert_eq!(bytes.len(), HEADER_LEN + reply.wire_size());
    }

    #[test]
    fn magic_clobber_is_rejected(frame in frames(), pos in 0usize..4, bad in 0u8..=255) {
        let mut bytes = encode_frame(&frame);
        if bytes[pos] == bad {
            // ensure an actual change
            bytes[pos] = bad.wrapping_add(1);
        } else {
            bytes[pos] = bad;
        }
        prop_assert!(matches!(decode_frame(&bytes), Err(WireError::BadMagic(_))));
    }
}

// ---------------------------------------------------------------------
// FrameAccumulator: streaming reassembly must be byte-identical to
// whole-buffer decoding no matter where the chunk boundaries fall.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn accumulator_matches_whole_buffer_decode_at_any_split(
        stream_frames in vec(frames(), 1..4),
        chunk_sizes in vec(1usize..17, 1..64),
    ) {
        let mut stream = Vec::new();
        for f in &stream_frames {
            stream.extend_from_slice(&encode_frame(f));
        }

        let mut acc = FrameAccumulator::new();
        let mut got = Vec::new();
        let mut offset = 0usize; // bytes fed so far
        let mut consumed = 0usize; // bytes yielded as frames so far
        let mut pick = 0usize;
        while offset < stream.len() {
            let take = chunk_sizes[pick % chunk_sizes.len()].min(stream.len() - offset);
            pick += 1;
            acc.feed(&stream[offset..offset + take]);
            offset += take;
            while let Some((frame, used)) = acc.next_frame().expect("valid stream") {
                // Byte-identical to decoding the same stream whole.
                let (whole, whole_used) =
                    decode_frame(&stream[consumed..]).expect("whole-buffer decode");
                prop_assert_eq!(&frame, &whole);
                prop_assert_eq!(used, whole_used);
                consumed += used;
                got.push(frame);
            }
        }
        prop_assert_eq!(got, stream_frames);
        prop_assert_eq!(consumed, stream.len());
        prop_assert_eq!(acc.buffered(), 0);
    }

    #[test]
    fn accumulator_survives_one_byte_feeds(frame in frames()) {
        let bytes = encode_frame(&frame);
        let mut acc = FrameAccumulator::new();
        for (i, &b) in bytes.iter().enumerate() {
            acc.feed(&[b]);
            let step = acc.next_frame().expect("valid stream");
            if i + 1 < bytes.len() {
                prop_assert_eq!(step, None);
            } else {
                prop_assert_eq!(step, Some((frame.clone(), bytes.len())));
            }
        }
    }

    #[test]
    fn accumulator_rejects_garbage_prefixes_and_stays_poisoned(
        garbage in vec(0u8..=255, 4..40),
        frame in frames(),
    ) {
        let mut garbage = garbage;
        if garbage[..4] == MAGIC {
            garbage[0] ^= 0xff; // force a non-magic prefix
        }
        let mut acc = FrameAccumulator::new();
        acc.feed(&garbage);
        prop_assert!(matches!(acc.next_frame(), Err(WireError::BadMagic(_))));
        // A poisoned stream cannot resynchronize, even on valid bytes.
        acc.feed(&encode_frame(&frame));
        prop_assert!(matches!(acc.next_frame(), Err(WireError::BadMagic(_))));
    }

    #[test]
    fn accumulator_rejects_oversize_lengths_from_the_header_alone(
        frame in frames(),
        extra in 1u32..1000,
    ) {
        let mut bytes = encode_frame(&frame);
        bytes[8..12].copy_from_slice(&((MAX_BODY_LEN as u32) + extra).to_le_bytes());
        let mut acc = FrameAccumulator::new();
        // Header only: the body never needs to arrive to be refused.
        acc.feed(&bytes[..HEADER_LEN]);
        prop_assert!(matches!(
            acc.next_frame(),
            Err(WireError::OversizedBody(_))
        ));
    }

    #[test]
    fn accumulator_keeps_good_frames_before_a_version_clobber(
        good in frames(),
        bad in frames(),
        version in 2u16..1000,
    ) {
        let mut stream = encode_frame(&good);
        let mut second = encode_frame(&bad);
        second[4..6].copy_from_slice(&version.to_le_bytes());
        stream.extend_from_slice(&second);

        let mut acc = FrameAccumulator::new();
        acc.feed(&stream);
        let (frame, _) = acc.next_frame().expect("first frame intact").expect("ready");
        prop_assert_eq!(frame, good);
        prop_assert!(matches!(
            acc.next_frame(),
            Err(WireError::VersionMismatch { .. })
        ));
    }
}
