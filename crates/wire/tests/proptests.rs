//! Property tests: every frame type must survive encode → decode
//! unchanged, report its length exactly, and the decoder must reject
//! truncations and version clobbering at every position.

use jxp_core::payload::{MeetingPayload, PagePayload, WorldPayload};
use jxp_core::selection::PeerSynopses;
use jxp_synopses::bloom::BloomFilter;
use jxp_synopses::fm_sketch::FmSketch;
use jxp_synopses::mips::MipsVector;
use jxp_webgraph::PageId;
use jxp_wire::{
    decode_frame, encode_frame, encoded_len, ErrorCode, Frame, QueryHit, QueryPayload,
    QueryReplyPayload, StatsPayload, SynopsisPayload, WireError, HEADER_LEN,
};
use proptest::collection::vec;
use proptest::prelude::*;

fn page_ids() -> impl Strategy<Value = Vec<PageId>> {
    vec(0u32..50_000, 0..6).prop_map(|v| v.into_iter().map(PageId).collect())
}

fn meeting_payloads() -> impl Strategy<Value = MeetingPayload> {
    let pages = vec((0u32..50_000, -1.0f64..1.0, page_ids()), 0..5).prop_map(|entries| {
        entries
            .into_iter()
            .map(|(page, score, succs)| PagePayload {
                page: PageId(page),
                score,
                succs,
            })
            .collect::<Vec<_>>()
    });
    let world =
        vec((0u32..50_000, 0u32..100, -1.0f64..1.0, page_ids()), 0..5).prop_map(|entries| {
            entries
                .into_iter()
                .map(|(src, out_degree, score, targets)| WorldPayload {
                    src: PageId(src),
                    out_degree,
                    score,
                    targets,
                })
                .collect::<Vec<_>>()
        });
    let dangling = vec((0u32..50_000, 0.0f64..1.0), 0..4).prop_map(|entries| {
        entries
            .into_iter()
            .map(|(p, s)| (PageId(p), s))
            .collect::<Vec<_>>()
    });
    (pages, world, dangling, 0.0f64..1.0).prop_map(|(pages, world, world_dangling, world_score)| {
        MeetingPayload {
            pages,
            world,
            world_dangling,
            world_score,
        }
    })
}

fn mips_vectors() -> impl Strategy<Value = MipsVector> {
    (vec(0u64..u64::MAX, 1..40), 0u64..10_000)
        .prop_map(|(mins, count)| MipsVector::from_parts(mins, count))
}

fn synopsis_payloads() -> impl Strategy<Value = SynopsisPayload> {
    let optional_sketch = (0u8..2, vec(0u64..u64::MAX, 1..16))
        .prop_map(|(on, bitmaps)| (on == 1).then(|| FmSketch::from_bitmaps(bitmaps)));
    let optional_bloom = (0u8..2, vec(0u64..u64::MAX, 1..16), 1u32..8, 0u64..1000).prop_map(
        |(on, bits, hashes, inserted)| {
            (on == 1).then(|| BloomFilter::from_parts(bits, hashes, inserted))
        },
    );
    (
        mips_vectors(),
        mips_vectors(),
        optional_sketch,
        optional_bloom,
    )
        .prop_map(|(local, successors, sketch, bloom)| SynopsisPayload {
            synopses: PeerSynopses { local, successors },
            sketch,
            bloom,
        })
}

fn stats_payloads() -> impl Strategy<Value = StatsPayload> {
    vec(0u64..u64::MAX, 8).prop_map(|f| StatsPayload {
        node_id: f[0],
        meetings_attempted: f[1],
        meetings_completed: f[2],
        meetings_failed: f[3],
        meetings_served: f[4],
        retries: f[5],
        bytes_in: f[6],
        bytes_out: f[7],
    })
}

fn query_payloads() -> impl Strategy<Value = QueryPayload> {
    (0u64..u64::MAX, 0u32..1000, vec(0u32..100_000, 0..12))
        .prop_map(|(query_id, k, terms)| QueryPayload { query_id, k, terms })
}

fn query_replies() -> impl Strategy<Value = QueryReplyPayload> {
    let hits = vec((0u32..50_000, 0.0f64..100.0, 0.0f64..2.0), 0..10).prop_map(|entries| {
        entries
            .into_iter()
            .map(|(page, tfidf, fused)| QueryHit {
                page: PageId(page),
                tfidf,
                fused,
            })
            .collect::<Vec<_>>()
    });
    (0u64..u64::MAX, 0u64..u64::MAX, 0u64..100_000, 0u8..2, hits).prop_map(
        |(node_id, query_id, epoch, cached, hits)| QueryReplyPayload {
            node_id,
            query_id,
            epoch,
            cached: cached == 1,
            hits,
        },
    )
}

/// One strategy covering every frame type: the selector picks a variant
/// and the components feed it.
fn frames() -> impl Strategy<Value = Frame> {
    (
        0u8..10,
        (0u64..u64::MAX, 0u64..1_000_000),
        meeting_payloads(),
        synopsis_payloads(),
        0u8..=255,
        vec(32u8..127, 0..40),
        stats_payloads(),
        (query_payloads(), query_replies()),
    )
        .prop_map(
            |(
                selector,
                (node_id, num_pages),
                meeting,
                synopsis,
                ack_of,
                detail,
                stats,
                (query, reply),
            )| {
                match selector {
                    0 => Frame::Hello { node_id, num_pages },
                    1 => Frame::MeetRequest(meeting),
                    2 => Frame::MeetReply(meeting),
                    3 => Frame::SynopsisExchange(synopsis),
                    4 => Frame::Ack { of: ack_of },
                    5 => Frame::StatsRequest,
                    6 => Frame::StatsReply(stats),
                    7 => Frame::QueryRequest(query),
                    8 => Frame::QueryReply(reply),
                    _ => Frame::Error {
                        code: ErrorCode::Busy,
                        detail: String::from_utf8(detail).unwrap(),
                    },
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn every_frame_roundtrips(frame in frames()) {
        let bytes = encode_frame(&frame);
        prop_assert_eq!(bytes.len(), encoded_len(&frame));
        let (decoded, consumed) = decode_frame(&bytes).expect("decode");
        prop_assert_eq!(consumed, bytes.len());
        prop_assert_eq!(decoded, frame);
    }

    #[test]
    fn every_truncation_is_rejected(frame in frames(), cut in 0.0f64..1.0) {
        let bytes = encode_frame(&frame);
        // Cut anywhere strictly before the end, header included.
        let keep = (bytes.len() as f64 * cut) as usize;
        prop_assert!(keep < bytes.len());
        match decode_frame(&bytes[..keep]) {
            Err(WireError::Truncated { needed, got }) => {
                prop_assert_eq!(got, keep);
                // The reported requirement never exceeds the true frame
                // length and always asks for more than we gave.
                prop_assert!(needed > keep);
                prop_assert!(needed <= bytes.len());
            }
            other => prop_assert!(false, "expected Truncated, got {:?}", other),
        }
    }

    #[test]
    fn wrong_version_is_rejected(frame in frames(), version in 0u16..1000) {
        let mut bytes = encode_frame(&frame);
        let bad = if version == jxp_wire::PROTOCOL_VERSION { version + 1 } else { version };
        bytes[4..6].copy_from_slice(&bad.to_le_bytes());
        match decode_frame(&bytes) {
            Err(WireError::VersionMismatch { got, expected }) => {
                prop_assert_eq!(got, bad);
                prop_assert_eq!(expected, jxp_wire::PROTOCOL_VERSION);
            }
            other => prop_assert!(false, "expected VersionMismatch, got {:?}", other),
        }
    }

    #[test]
    fn meeting_body_length_always_matches_wire_size(payload in meeting_payloads()) {
        let frame = Frame::MeetRequest(payload);
        let bytes = encode_frame(&frame);
        if let Frame::MeetRequest(p) = &frame {
            prop_assert_eq!(bytes.len(), HEADER_LEN + p.wire_size());
        }
    }

    #[test]
    fn query_body_lengths_always_match_wire_size(
        query in query_payloads(),
        reply in query_replies(),
    ) {
        let bytes = encode_frame(&Frame::QueryRequest(query.clone()));
        prop_assert_eq!(bytes.len(), HEADER_LEN + query.wire_size());
        let bytes = encode_frame(&Frame::QueryReply(reply.clone()));
        prop_assert_eq!(bytes.len(), HEADER_LEN + reply.wire_size());
    }

    #[test]
    fn magic_clobber_is_rejected(frame in frames(), pos in 0usize..4, bad in 0u8..=255) {
        let mut bytes = encode_frame(&frame);
        if bytes[pos] == bad {
            // ensure an actual change
            bytes[pos] = bad.wrapping_add(1);
        } else {
            bytes[pos] = bad;
        }
        prop_assert!(matches!(decode_frame(&bytes), Err(WireError::BadMagic(_))));
    }
}
