#![deny(missing_docs)]
//! Wire protocol for JXP meetings: a versioned, length-prefixed binary
//! framing plus codecs for every message exchanged between peers.

pub mod accum;
pub mod frame;

pub use accum::FrameAccumulator;
pub use frame::{
    decode_frame, encode_frame, encoded_len, ErrorCode, Frame, QueryHit, QueryPayload,
    QueryReplyPayload, StatsPayload, SynopsisPayload, WireError, HEADER_LEN, MAGIC, MAX_BODY_LEN,
    PROTOCOL_VERSION,
};
