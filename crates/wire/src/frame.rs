//! Frame layout and codecs.
//!
//! Every message travels as one **frame**:
//!
//! ```text
//! offset  size  field
//! 0       4     magic   b"JXPW"
//! 4       2     version u16 LE (PROTOCOL_VERSION)
//! 6       1     frame type
//! 7       1     flags (reserved, must be 0)
//! 8       4     body length u32 LE
//! 12      n     body (frame-type specific, little-endian throughout)
//! ```
//!
//! The body of [`Frame::MeetRequest`] / [`Frame::MeetReply`] is exactly
//! `MeetingPayload::wire_size()` bytes — the analytic accounting that
//! Figures 11/12 plot *is* the measured encoding (pinned by
//! [`tests::meeting_body_is_exactly_wire_size`]); the fixed
//! [`HEADER_LEN`]-byte header is the only framing overhead. Likewise the
//! synopsis types encode to exactly their `wire_size()`.

use bytes::{Buf, BufMut};
use jxp_core::payload::{PagePayload, WorldPayload};
use jxp_core::selection::PeerSynopses;
use jxp_core::MeetingPayload;
use jxp_synopses::bloom::BloomFilter;
use jxp_synopses::fm_sketch::FmSketch;
use jxp_synopses::mips::MipsVector;
use jxp_webgraph::PageId;

/// First four bytes of every frame.
pub const MAGIC: [u8; 4] = *b"JXPW";

/// Current protocol version; bumped on any incompatible layout change.
pub const PROTOCOL_VERSION: u16 = 1;

/// Fixed frame-header length (magic + version + type + flags + body len).
pub const HEADER_LEN: usize = 12;

/// Largest body this implementation accepts (64 MiB): a cheap guard
/// against allocating from a corrupt or hostile length field.
pub const MAX_BODY_LEN: usize = 64 << 20;

const TYPE_HELLO: u8 = 1;
const TYPE_MEET_REQUEST: u8 = 2;
const TYPE_MEET_REPLY: u8 = 3;
const TYPE_SYNOPSIS_EXCHANGE: u8 = 4;
const TYPE_ACK: u8 = 5;
const TYPE_ERROR: u8 = 6;
const TYPE_STATS_REQUEST: u8 = 7;
const TYPE_STATS_REPLY: u8 = 8;
const TYPE_QUERY_REQUEST: u8 = 9;
const TYPE_QUERY_REPLY: u8 = 10;

/// Whether a header type byte names a frame this protocol version
/// defines. The streaming accumulator uses this to reject garbage
/// streams from the header prefix, before the body length arrives.
pub(crate) fn frame_type_known(ty: u8) -> bool {
    (TYPE_HELLO..=TYPE_QUERY_REPLY).contains(&ty)
}

/// Decode failures. `Truncated` is retriable-by-reading-more when the
/// input is a stream prefix; everything else is a protocol violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The frame does not start with [`MAGIC`].
    BadMagic([u8; 4]),
    /// The sender speaks a different protocol version.
    VersionMismatch {
        /// Version found in the header.
        got: u16,
        /// Version this implementation speaks.
        expected: u16,
    },
    /// Unknown frame-type byte.
    UnknownFrameType(u8),
    /// The input ends before the complete frame.
    Truncated {
        /// Bytes required (for the header, or header + body).
        needed: usize,
        /// Bytes available.
        got: usize,
    },
    /// The declared body length exceeds [`MAX_BODY_LEN`].
    OversizedBody(usize),
    /// The body parsed, but not to its declared length, or a field
    /// violated an invariant (non-zero flags, bad UTF-8, zero-dimension
    /// synopsis, …).
    Malformed(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::BadMagic(m) => write!(f, "bad magic {m:02x?}"),
            WireError::VersionMismatch { got, expected } => {
                write!(f, "protocol version {got} (this peer speaks {expected})")
            }
            WireError::UnknownFrameType(t) => write!(f, "unknown frame type {t}"),
            WireError::Truncated { needed, got } => {
                write!(f, "truncated frame: need {needed} bytes, have {got}")
            }
            WireError::OversizedBody(n) => write!(f, "declared body of {n} bytes exceeds cap"),
            WireError::Malformed(what) => write!(f, "malformed frame: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Error codes carried by [`Frame::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The peer is shutting down or refuses the meeting.
    Refused,
    /// The peer could not parse or validate what it received.
    BadRequest,
    /// The peer is currently in another meeting; try again later.
    Busy,
}

impl ErrorCode {
    fn to_u16(self) -> u16 {
        match self {
            ErrorCode::Refused => 1,
            ErrorCode::BadRequest => 2,
            ErrorCode::Busy => 3,
        }
    }

    fn from_u16(v: u16) -> Result<Self, WireError> {
        match v {
            1 => Ok(ErrorCode::Refused),
            2 => Ok(ErrorCode::BadRequest),
            3 => Ok(ErrorCode::Busy),
            _ => Err(WireError::Malformed("unknown error code")),
        }
    }
}

/// The synopses a peer publishes for pre-meetings selection and network
/// size estimation, exchanged in one [`Frame::SynopsisExchange`].
#[derive(Debug, Clone, PartialEq)]
pub struct SynopsisPayload {
    /// The two MIPs vectors of §4.3 (`local`, `successors`).
    pub synopses: PeerSynopses,
    /// FM sketch of the sender's page set (gossiped `N` estimation).
    pub sketch: Option<FmSketch>,
    /// Bloom filter of the sender's page set (alternative overlap
    /// synopsis; compared against MIPs in the integration tests).
    pub bloom: Option<BloomFilter>,
}

impl SynopsisPayload {
    /// Exact body length of the [`Frame::SynopsisExchange`] encoding.
    pub fn wire_size(&self) -> usize {
        self.synopses.wire_size()
            + 1
            + self.sketch.as_ref().map_or(0, FmSketch::wire_size)
            + 1
            + self.bloom.as_ref().map_or(0, BloomFilter::wire_size)
    }
}

/// A node's counter snapshot, answered to a [`Frame::StatsRequest`] by
/// peers running with the stats endpoint enabled. Fixed 64-byte body:
/// the node id plus its seven `u64` counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsPayload {
    /// Responding node's id.
    pub node_id: u64,
    /// Meetings the node initiated.
    pub meetings_attempted: u64,
    /// Initiated meetings that completed.
    pub meetings_completed: u64,
    /// Initiated meetings abandoned.
    pub meetings_failed: u64,
    /// Inbound meeting requests answered.
    pub meetings_served: u64,
    /// Retries spent across initiated exchanges.
    pub retries: u64,
    /// Wire bytes received.
    pub bytes_in: u64,
    /// Wire bytes sent.
    pub bytes_out: u64,
}

impl StatsPayload {
    /// Exact body length of the [`Frame::StatsReply`] encoding.
    pub const fn wire_size() -> usize {
        8 * 8
    }
}

/// A top-k search request answered by peers running the serve layer.
/// Peers without a query front end answer [`Frame::Error`]/`Refused`,
/// mirroring the stats endpoint's opt-in contract.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryPayload {
    /// Caller-chosen id echoed in the reply (correlates request/reply
    /// on a shared transport).
    pub query_id: u64,
    /// Number of fused results requested.
    pub k: u32,
    /// Term ids of the (conjunctive-free, bag-of-words) query.
    pub terms: Vec<u32>,
}

impl QueryPayload {
    /// Exact body length of the [`Frame::QueryRequest`] encoding.
    pub fn wire_size(&self) -> usize {
        8 + 4 + 4 + 4 * self.terms.len()
    }
}

/// One result entry in a [`Frame::QueryReply`]: both the raw tf·idf
/// score and the fused (tf·idf ⊕ JXP authority) score travel, so a
/// client can rank either way without a second round trip.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryHit {
    /// Matching page.
    pub page: PageId,
    /// Local tf·idf score from the responder's posting lists.
    pub tfidf: f64,
    /// Fused score combining tf·idf with the responder's live JXP
    /// authority estimate.
    pub fused: f64,
}

/// A peer's answer to a [`Frame::QueryRequest`].
#[derive(Debug, Clone, PartialEq)]
pub struct QueryReplyPayload {
    /// Responding node's id.
    pub node_id: u64,
    /// Echo of the request's `query_id`.
    pub query_id: u64,
    /// The responder's score epoch when the result set was computed.
    /// Advances after every absorbed meeting; clients can detect how
    /// fresh the authority component is.
    pub epoch: u64,
    /// Whether the result set was served from the responder's LRU cache.
    pub cached: bool,
    /// Fused top-k hits, highest fused score first.
    pub hits: Vec<QueryHit>,
}

impl QueryReplyPayload {
    /// Exact body length of the [`Frame::QueryReply`] encoding.
    pub fn wire_size(&self) -> usize {
        8 + 8 + 8 + 1 + 4 + 20 * self.hits.len()
    }
}

/// One protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Handshake: sender's node id and local fragment size.
    Hello {
        /// Sender's stable node identifier.
        node_id: u64,
        /// Number of pages in the sender's fragment.
        num_pages: u64,
    },
    /// A meeting initiation carrying the initiator's full payload.
    MeetRequest(MeetingPayload),
    /// The responder's payload, completing the exchange.
    MeetReply(MeetingPayload),
    /// Synopses for pre-meetings partner scoring and `N` estimation.
    SynopsisExchange(SynopsisPayload),
    /// Positive acknowledgement of the frame type named in `of`.
    Ack {
        /// Frame-type byte being acknowledged.
        of: u8,
    },
    /// Negative reply: the peer refuses or cannot process a frame.
    Error {
        /// Machine-readable reason.
        code: ErrorCode,
        /// Human-readable detail.
        detail: String,
    },
    /// Ask a peer for its counter snapshot (empty body). Peers without
    /// the stats endpoint enabled answer [`Frame::Error`]/`Refused`.
    StatsRequest,
    /// A peer's counter snapshot.
    StatsReply(StatsPayload),
    /// A top-k search request. Peers without a serve layer answer
    /// [`Frame::Error`]/`Refused`.
    QueryRequest(QueryPayload),
    /// A peer's fused top-k result set.
    QueryReply(QueryReplyPayload),
}

impl Frame {
    fn type_byte(&self) -> u8 {
        match self {
            Frame::Hello { .. } => TYPE_HELLO,
            Frame::MeetRequest(_) => TYPE_MEET_REQUEST,
            Frame::MeetReply(_) => TYPE_MEET_REPLY,
            Frame::SynopsisExchange(_) => TYPE_SYNOPSIS_EXCHANGE,
            Frame::Ack { .. } => TYPE_ACK,
            Frame::Error { .. } => TYPE_ERROR,
            Frame::StatsRequest => TYPE_STATS_REQUEST,
            Frame::StatsReply(_) => TYPE_STATS_REPLY,
            Frame::QueryRequest(_) => TYPE_QUERY_REQUEST,
            Frame::QueryReply(_) => TYPE_QUERY_REPLY,
        }
    }

    /// Exact body length of this frame's encoding.
    pub fn body_len(&self) -> usize {
        match self {
            Frame::Hello { .. } => 8 + 8,
            Frame::MeetRequest(p) | Frame::MeetReply(p) => p.wire_size(),
            Frame::SynopsisExchange(s) => s.wire_size(),
            Frame::Ack { .. } => 1,
            Frame::Error { detail, .. } => 2 + 4 + detail.len(),
            Frame::StatsRequest => 0,
            Frame::StatsReply(_) => StatsPayload::wire_size(),
            Frame::QueryRequest(q) => q.wire_size(),
            Frame::QueryReply(r) => r.wire_size(),
        }
    }
}

/// Exact length of [`encode_frame`]'s output for `frame`, without
/// encoding: header plus body.
pub fn encoded_len(frame: &Frame) -> usize {
    HEADER_LEN + frame.body_len()
}

/// Encode one frame, header included.
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let body_len = frame.body_len();
    let mut buf = Vec::with_capacity(HEADER_LEN + body_len);
    buf.put_slice(&MAGIC);
    buf.put_u16_le(PROTOCOL_VERSION);
    buf.put_u8(frame.type_byte());
    buf.put_u8(0); // flags
    buf.put_u32_le(body_len as u32);
    match frame {
        Frame::Hello { node_id, num_pages } => {
            buf.put_u64_le(*node_id);
            buf.put_u64_le(*num_pages);
        }
        Frame::MeetRequest(p) | Frame::MeetReply(p) => encode_meeting_payload(&mut buf, p),
        Frame::SynopsisExchange(s) => {
            encode_mips(&mut buf, &s.synopses.local);
            encode_mips(&mut buf, &s.synopses.successors);
            match &s.sketch {
                Some(fm) => {
                    buf.put_u8(1);
                    buf.put_u32_le(fm.num_buckets() as u32);
                    for &w in fm.bitmaps() {
                        buf.put_u64_le(w);
                    }
                }
                None => buf.put_u8(0),
            }
            match &s.bloom {
                Some(b) => {
                    buf.put_u8(1);
                    buf.put_u32_le(b.words().len() as u32);
                    buf.put_u32_le(b.num_hashes());
                    buf.put_u64_le(b.inserted());
                    for &w in b.words() {
                        buf.put_u64_le(w);
                    }
                }
                None => buf.put_u8(0),
            }
        }
        Frame::Ack { of } => buf.put_u8(*of),
        Frame::Error { code, detail } => {
            buf.put_u16_le(code.to_u16());
            buf.put_u32_le(detail.len() as u32);
            buf.put_slice(detail.as_bytes());
        }
        Frame::StatsRequest => {}
        Frame::StatsReply(s) => {
            buf.put_u64_le(s.node_id);
            buf.put_u64_le(s.meetings_attempted);
            buf.put_u64_le(s.meetings_completed);
            buf.put_u64_le(s.meetings_failed);
            buf.put_u64_le(s.meetings_served);
            buf.put_u64_le(s.retries);
            buf.put_u64_le(s.bytes_in);
            buf.put_u64_le(s.bytes_out);
        }
        Frame::QueryRequest(q) => {
            buf.put_u64_le(q.query_id);
            buf.put_u32_le(q.k);
            buf.put_u32_le(q.terms.len() as u32);
            for &t in &q.terms {
                buf.put_u32_le(t);
            }
        }
        Frame::QueryReply(r) => {
            buf.put_u64_le(r.node_id);
            buf.put_u64_le(r.query_id);
            buf.put_u64_le(r.epoch);
            buf.put_u8(u8::from(r.cached));
            buf.put_u32_le(r.hits.len() as u32);
            for h in &r.hits {
                buf.put_u32_le(h.page.0);
                buf.put_f64_le(h.tfidf);
                buf.put_f64_le(h.fused);
            }
        }
    }
    debug_assert_eq!(buf.len(), HEADER_LEN + body_len, "body_len out of sync");
    buf
}

/// Decode one frame from the front of `input`. Returns the frame and the
/// number of bytes consumed, so successive frames can be decoded from one
/// buffer. A short `input` yields [`WireError::Truncated`] with the total
/// length needed, letting stream readers fetch the remainder.
pub fn decode_frame(input: &[u8]) -> Result<(Frame, usize), WireError> {
    if input.len() < HEADER_LEN {
        return Err(WireError::Truncated {
            needed: HEADER_LEN,
            got: input.len(),
        });
    }
    let mut header = &input[..HEADER_LEN];
    let mut magic = [0u8; 4];
    header.copy_to_slice(&mut magic);
    if magic != MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    let version = header.get_u16_le();
    if version != PROTOCOL_VERSION {
        return Err(WireError::VersionMismatch {
            got: version,
            expected: PROTOCOL_VERSION,
        });
    }
    let frame_type = header.get_u8();
    if header.get_u8() != 0 {
        return Err(WireError::Malformed("non-zero flags"));
    }
    let body_len = header.get_u32_le() as usize;
    if body_len > MAX_BODY_LEN {
        return Err(WireError::OversizedBody(body_len));
    }
    let total = HEADER_LEN + body_len;
    if input.len() < total {
        return Err(WireError::Truncated {
            needed: total,
            got: input.len(),
        });
    }
    let mut body = &input[HEADER_LEN..total];
    let frame = match frame_type {
        TYPE_HELLO => {
            let node_id = take_u64(&mut body)?;
            let num_pages = take_u64(&mut body)?;
            Frame::Hello { node_id, num_pages }
        }
        TYPE_MEET_REQUEST => Frame::MeetRequest(decode_meeting_payload(&mut body)?),
        TYPE_MEET_REPLY => Frame::MeetReply(decode_meeting_payload(&mut body)?),
        TYPE_SYNOPSIS_EXCHANGE => {
            let local = decode_mips(&mut body)?;
            let successors = decode_mips(&mut body)?;
            let sketch = match take_u8(&mut body)? {
                0 => None,
                1 => {
                    let buckets = take_u32(&mut body)? as usize;
                    if buckets == 0 {
                        return Err(WireError::Malformed("zero-bucket FM sketch"));
                    }
                    let words = take_u64_vec(&mut body, buckets)?;
                    Some(FmSketch::from_bitmaps(words))
                }
                _ => return Err(WireError::Malformed("bad sketch presence byte")),
            };
            let bloom = match take_u8(&mut body)? {
                0 => None,
                1 => {
                    let words = take_u32(&mut body)? as usize;
                    let num_hashes = take_u32(&mut body)?;
                    let inserted = take_u64(&mut body)?;
                    if words == 0 || num_hashes == 0 {
                        return Err(WireError::Malformed("degenerate bloom filter"));
                    }
                    let bits = take_u64_vec(&mut body, words)?;
                    Some(BloomFilter::from_parts(bits, num_hashes, inserted))
                }
                _ => return Err(WireError::Malformed("bad bloom presence byte")),
            };
            Frame::SynopsisExchange(SynopsisPayload {
                synopses: PeerSynopses { local, successors },
                sketch,
                bloom,
            })
        }
        TYPE_ACK => Frame::Ack {
            of: take_u8(&mut body)?,
        },
        TYPE_ERROR => {
            let code = ErrorCode::from_u16(take_u16(&mut body)?)?;
            let len = take_u32(&mut body)? as usize;
            if body.remaining() < len {
                return Err(WireError::Malformed("error detail overruns body"));
            }
            let mut raw = vec![0u8; len];
            body.copy_to_slice(&mut raw);
            let detail =
                String::from_utf8(raw).map_err(|_| WireError::Malformed("error detail utf-8"))?;
            Frame::Error { code, detail }
        }
        TYPE_STATS_REQUEST => Frame::StatsRequest,
        TYPE_STATS_REPLY => Frame::StatsReply(StatsPayload {
            node_id: take_u64(&mut body)?,
            meetings_attempted: take_u64(&mut body)?,
            meetings_completed: take_u64(&mut body)?,
            meetings_failed: take_u64(&mut body)?,
            meetings_served: take_u64(&mut body)?,
            retries: take_u64(&mut body)?,
            bytes_in: take_u64(&mut body)?,
            bytes_out: take_u64(&mut body)?,
        }),
        TYPE_QUERY_REQUEST => {
            let query_id = take_u64(&mut body)?;
            let k = take_u32(&mut body)?;
            let num_terms = take_u32(&mut body)? as usize;
            check_claimed(&body, num_terms, 4)?;
            let mut terms = Vec::with_capacity(num_terms);
            for _ in 0..num_terms {
                terms.push(take_u32(&mut body)?);
            }
            Frame::QueryRequest(QueryPayload { query_id, k, terms })
        }
        TYPE_QUERY_REPLY => {
            let node_id = take_u64(&mut body)?;
            let query_id = take_u64(&mut body)?;
            let epoch = take_u64(&mut body)?;
            let cached = match take_u8(&mut body)? {
                0 => false,
                1 => true,
                _ => return Err(WireError::Malformed("bad cached flag byte")),
            };
            let num_hits = take_u32(&mut body)? as usize;
            check_claimed(&body, num_hits, 20)?;
            let mut hits = Vec::with_capacity(num_hits);
            for _ in 0..num_hits {
                hits.push(QueryHit {
                    page: PageId(take_u32(&mut body)?),
                    tfidf: take_f64(&mut body)?,
                    fused: take_f64(&mut body)?,
                });
            }
            Frame::QueryReply(QueryReplyPayload {
                node_id,
                query_id,
                epoch,
                cached,
                hits,
            })
        }
        other => return Err(WireError::UnknownFrameType(other)),
    };
    if body.has_remaining() {
        return Err(WireError::Malformed("trailing bytes in body"));
    }
    Ok((frame, total))
}

fn encode_meeting_payload(buf: &mut Vec<u8>, p: &MeetingPayload) {
    buf.put_f64_le(p.world_score);
    buf.put_u32_le(p.pages.len() as u32);
    for pp in &p.pages {
        buf.put_u32_le(pp.page.0);
        buf.put_f64_le(pp.score);
        buf.put_u32_le(pp.succs.len() as u32);
        for s in &pp.succs {
            buf.put_u32_le(s.0);
        }
    }
    buf.put_u32_le(p.world.len() as u32);
    for wp in &p.world {
        buf.put_u32_le(wp.src.0);
        buf.put_u32_le(wp.out_degree);
        buf.put_f64_le(wp.score);
        buf.put_u32_le(wp.targets.len() as u32);
        for t in &wp.targets {
            buf.put_u32_le(t.0);
        }
    }
    buf.put_u32_le(p.world_dangling.len() as u32);
    for &(page, score) in &p.world_dangling {
        buf.put_u32_le(page.0);
        buf.put_f64_le(score);
    }
}

fn decode_meeting_payload(body: &mut &[u8]) -> Result<MeetingPayload, WireError> {
    let world_score = take_f64(body)?;
    let num_pages = take_u32(body)? as usize;
    check_claimed(body, num_pages, 16)?;
    let mut pages = Vec::with_capacity(num_pages);
    for _ in 0..num_pages {
        let page = PageId(take_u32(body)?);
        let score = take_f64(body)?;
        let num_succs = take_u32(body)? as usize;
        check_claimed(body, num_succs, 4)?;
        let mut succs = Vec::with_capacity(num_succs);
        for _ in 0..num_succs {
            succs.push(PageId(take_u32(body)?));
        }
        pages.push(PagePayload { page, score, succs });
    }
    let num_world = take_u32(body)? as usize;
    check_claimed(body, num_world, 20)?;
    let mut world = Vec::with_capacity(num_world);
    for _ in 0..num_world {
        let src = PageId(take_u32(body)?);
        let out_degree = take_u32(body)?;
        let score = take_f64(body)?;
        let num_targets = take_u32(body)? as usize;
        check_claimed(body, num_targets, 4)?;
        let mut targets = Vec::with_capacity(num_targets);
        for _ in 0..num_targets {
            targets.push(PageId(take_u32(body)?));
        }
        world.push(WorldPayload {
            src,
            out_degree,
            score,
            targets,
        });
    }
    let num_dangling = take_u32(body)? as usize;
    check_claimed(body, num_dangling, 12)?;
    let mut world_dangling = Vec::with_capacity(num_dangling);
    for _ in 0..num_dangling {
        let page = PageId(take_u32(body)?);
        let score = take_f64(body)?;
        world_dangling.push((page, score));
    }
    Ok(MeetingPayload {
        pages,
        world,
        world_dangling,
        world_score,
    })
}

fn encode_mips(buf: &mut Vec<u8>, v: &MipsVector) {
    buf.put_u32_le(v.dims() as u32);
    buf.put_u64_le(v.count());
    for &m in v.mins() {
        buf.put_u64_le(m);
    }
}

fn decode_mips(body: &mut &[u8]) -> Result<MipsVector, WireError> {
    let dims = take_u32(body)? as usize;
    if dims == 0 {
        return Err(WireError::Malformed("zero-dimension MIPs vector"));
    }
    let count = take_u64(body)?;
    let mins = take_u64_vec(body, dims)?;
    Ok(MipsVector::from_parts(mins, count))
}

/// Reject length fields that claim more elements than the remaining body
/// could possibly hold (each element is at least `min_elem` bytes), before
/// `Vec::with_capacity` turns a corrupt length into a huge allocation.
fn check_claimed(body: &&[u8], claimed: usize, min_elem: usize) -> Result<(), WireError> {
    if claimed > body.remaining() / min_elem {
        return Err(WireError::Malformed("length field overruns body"));
    }
    Ok(())
}

macro_rules! take {
    ($name:ident, $t:ty, $get:ident, $n:expr) => {
        fn $name(body: &mut &[u8]) -> Result<$t, WireError> {
            if body.remaining() < $n {
                return Err(WireError::Malformed("field overruns body"));
            }
            Ok(body.$get())
        }
    };
}

take!(take_u8, u8, get_u8, 1);
take!(take_u16, u16, get_u16_le, 2);
take!(take_u32, u32, get_u32_le, 4);
take!(take_u64, u64, get_u64_le, 8);
take!(take_f64, f64, get_f64_le, 8);

fn take_u64_vec(body: &mut &[u8], n: usize) -> Result<Vec<u64>, WireError> {
    if body.remaining() < n * 8 {
        return Err(WireError::Malformed("u64 array overruns body"));
    }
    Ok((0..n).map(|_| body.get_u64_le()).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use jxp_synopses::mips::MipsPermutations;

    fn sample_payload() -> MeetingPayload {
        MeetingPayload {
            pages: vec![
                PagePayload {
                    page: PageId(0),
                    score: 0.25,
                    succs: vec![PageId(1), PageId(7)],
                },
                PagePayload {
                    page: PageId(1),
                    score: 0.5,
                    succs: vec![],
                },
            ],
            world: vec![WorldPayload {
                src: PageId(7),
                out_degree: 3,
                score: 0.125,
                targets: vec![PageId(0)],
            }],
            world_dangling: vec![(PageId(9), 0.0625)],
            world_score: 0.0625,
        }
    }

    fn sample_synopses() -> SynopsisPayload {
        let perms = MipsPermutations::generate(16, 5);
        let local = MipsVector::from_elements(&perms, 0..40u64);
        let successors = MipsVector::from_elements(&perms, 20..90u64);
        let mut sketch = FmSketch::new(32);
        let mut bloom = BloomFilter::new(256, 4);
        for x in 0..40u64 {
            sketch.insert(x);
            bloom.insert(x);
        }
        SynopsisPayload {
            synopses: PeerSynopses { local, successors },
            sketch: Some(sketch),
            bloom: Some(bloom),
        }
    }

    #[test]
    fn meeting_body_is_exactly_wire_size() {
        let p = sample_payload();
        let frame = Frame::MeetRequest(p.clone());
        let encoded = encode_frame(&frame);
        assert_eq!(encoded.len(), HEADER_LEN + p.wire_size());
        assert_eq!(encoded.len(), encoded_len(&frame));
    }

    #[test]
    fn synopsis_body_is_exactly_wire_sizes() {
        let s = sample_synopses();
        let expected = s.synopses.local.wire_size()
            + s.synopses.successors.wire_size()
            + 1
            + s.sketch.as_ref().unwrap().wire_size()
            + 1
            + s.bloom.as_ref().unwrap().wire_size();
        let frame = Frame::SynopsisExchange(s);
        assert_eq!(encode_frame(&frame).len(), HEADER_LEN + expected);
    }

    #[test]
    fn meeting_roundtrip_preserves_payload() {
        let p = sample_payload();
        let encoded = encode_frame(&Frame::MeetReply(p.clone()));
        let (decoded, used) = decode_frame(&encoded).unwrap();
        assert_eq!(used, encoded.len());
        match decoded {
            Frame::MeetReply(q) => assert_eq!(p, q),
            other => panic!("wrong frame: {other:?}"),
        }
    }

    #[test]
    fn synopsis_roundtrip_preserves_estimates() {
        let s = sample_synopses();
        let encoded = encode_frame(&Frame::SynopsisExchange(s.clone()));
        let (decoded, _) = decode_frame(&encoded).unwrap();
        let Frame::SynopsisExchange(d) = decoded else {
            panic!("wrong frame");
        };
        assert_eq!(d.synopses.local, s.synopses.local);
        assert_eq!(d.synopses.successors, s.synopses.successors);
        assert_eq!(d.sketch, s.sketch);
        assert_eq!(d.bloom, s.bloom);
    }

    #[test]
    fn successive_frames_decode_from_one_buffer() {
        let mut buf = encode_frame(&Frame::Hello {
            node_id: 3,
            num_pages: 99,
        });
        buf.extend_from_slice(&encode_frame(&Frame::Ack { of: TYPE_HELLO }));
        let (first, used) = decode_frame(&buf).unwrap();
        assert!(matches!(first, Frame::Hello { node_id: 3, .. }));
        let (second, used2) = decode_frame(&buf[used..]).unwrap();
        assert!(matches!(second, Frame::Ack { of: TYPE_HELLO }));
        assert_eq!(used + used2, buf.len());
    }

    #[test]
    fn error_frame_roundtrips() {
        let encoded = encode_frame(&Frame::Error {
            code: ErrorCode::Busy,
            detail: "in another meeting".into(),
        });
        let (decoded, _) = decode_frame(&encoded).unwrap();
        match decoded {
            Frame::Error { code, detail } => {
                assert_eq!(code, ErrorCode::Busy);
                assert_eq!(detail, "in another meeting");
            }
            other => panic!("wrong frame: {other:?}"),
        }
    }

    #[test]
    fn stats_frames_roundtrip_at_fixed_size() {
        let encoded = encode_frame(&Frame::StatsRequest);
        assert_eq!(encoded.len(), HEADER_LEN);
        let (decoded, used) = decode_frame(&encoded).unwrap();
        assert_eq!(decoded, Frame::StatsRequest);
        assert_eq!(used, HEADER_LEN);

        let payload = StatsPayload {
            node_id: 7,
            meetings_attempted: 100,
            meetings_completed: 96,
            meetings_failed: 4,
            meetings_served: 88,
            retries: 9,
            bytes_in: 123_456,
            bytes_out: 654_321,
        };
        let encoded = encode_frame(&Frame::StatsReply(payload));
        assert_eq!(encoded.len(), HEADER_LEN + StatsPayload::wire_size());
        let (decoded, _) = decode_frame(&encoded).unwrap();
        assert_eq!(decoded, Frame::StatsReply(payload));
    }

    fn sample_query() -> QueryPayload {
        QueryPayload {
            query_id: 42,
            k: 10,
            terms: vec![3, 17, 99],
        }
    }

    fn sample_query_reply() -> QueryReplyPayload {
        QueryReplyPayload {
            node_id: 5,
            query_id: 42,
            epoch: 13,
            cached: true,
            hits: vec![
                QueryHit {
                    page: PageId(7),
                    tfidf: 2.5,
                    fused: 0.9,
                },
                QueryHit {
                    page: PageId(1),
                    tfidf: 1.25,
                    fused: 0.4,
                },
            ],
        }
    }

    #[test]
    fn query_frames_roundtrip_at_exact_wire_size() {
        let q = sample_query();
        let encoded = encode_frame(&Frame::QueryRequest(q.clone()));
        assert_eq!(encoded.len(), HEADER_LEN + q.wire_size());
        let (decoded, used) = decode_frame(&encoded).unwrap();
        assert_eq!(used, encoded.len());
        assert_eq!(decoded, Frame::QueryRequest(q));

        let r = sample_query_reply();
        let encoded = encode_frame(&Frame::QueryReply(r.clone()));
        assert_eq!(encoded.len(), HEADER_LEN + r.wire_size());
        let (decoded, used) = decode_frame(&encoded).unwrap();
        assert_eq!(used, encoded.len());
        assert_eq!(decoded, Frame::QueryReply(r));
    }

    #[test]
    fn empty_query_and_reply_roundtrip() {
        let q = QueryPayload {
            query_id: 0,
            k: 0,
            terms: vec![],
        };
        let (decoded, _) = decode_frame(&encode_frame(&Frame::QueryRequest(q.clone()))).unwrap();
        assert_eq!(decoded, Frame::QueryRequest(q));
        let r = QueryReplyPayload {
            node_id: 0,
            query_id: 0,
            epoch: 0,
            cached: false,
            hits: vec![],
        };
        let (decoded, _) = decode_frame(&encode_frame(&Frame::QueryReply(r.clone()))).unwrap();
        assert_eq!(decoded, Frame::QueryReply(r));
    }

    #[test]
    fn corrupt_query_lengths_are_rejected_without_allocating() {
        // Term count is the u32 at offset 12 (query_id) + 4 (k).
        let mut encoded = encode_frame(&Frame::QueryRequest(sample_query()));
        let off = HEADER_LEN + 8 + 4;
        encoded[off..off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            decode_frame(&encoded),
            Err(WireError::Malformed("length field overruns body"))
        );
        // Hit count sits after node_id + query_id + epoch + cached flag.
        let mut encoded = encode_frame(&Frame::QueryReply(sample_query_reply()));
        let off = HEADER_LEN + 8 + 8 + 8 + 1;
        encoded[off..off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            decode_frame(&encoded),
            Err(WireError::Malformed("length field overruns body"))
        );
    }

    #[test]
    fn bad_cached_flag_byte_is_rejected() {
        let mut encoded = encode_frame(&Frame::QueryReply(sample_query_reply()));
        encoded[HEADER_LEN + 24] = 7;
        assert_eq!(
            decode_frame(&encoded),
            Err(WireError::Malformed("bad cached flag byte"))
        );
    }

    #[test]
    fn truncated_query_reply_body_is_rejected() {
        let encoded = encode_frame(&Frame::QueryReply(sample_query_reply()));
        let mut short = encoded.clone();
        short.truncate(HEADER_LEN + 30);
        short[8..12].copy_from_slice(&30u32.to_le_bytes());
        assert_eq!(
            decode_frame(&short),
            Err(WireError::Malformed("length field overruns body"))
        );
    }

    #[test]
    fn stats_reply_truncated_body_is_rejected() {
        let encoded = encode_frame(&Frame::StatsReply(StatsPayload::default()));
        let mut short = encoded.clone();
        short.truncate(HEADER_LEN + 40);
        short[8..12].copy_from_slice(&40u32.to_le_bytes());
        assert_eq!(
            decode_frame(&short),
            Err(WireError::Malformed("field overruns body"))
        );
    }

    #[test]
    fn truncated_header_and_body_are_reported() {
        let encoded = encode_frame(&Frame::Hello {
            node_id: 1,
            num_pages: 2,
        });
        assert_eq!(
            decode_frame(&encoded[..5]),
            Err(WireError::Truncated {
                needed: HEADER_LEN,
                got: 5
            })
        );
        assert_eq!(
            decode_frame(&encoded[..HEADER_LEN + 3]),
            Err(WireError::Truncated {
                needed: encoded.len(),
                got: HEADER_LEN + 3
            })
        );
    }

    #[test]
    fn version_mismatch_is_detected() {
        let mut encoded = encode_frame(&Frame::Ack { of: 1 });
        encoded[4] = 0xFF; // clobber version
        assert_eq!(
            decode_frame(&encoded),
            Err(WireError::VersionMismatch {
                got: u16::from_le_bytes([0xFF, 0x00]),
                expected: PROTOCOL_VERSION
            })
        );
    }

    #[test]
    fn bad_magic_and_unknown_type_are_detected() {
        let mut encoded = encode_frame(&Frame::Ack { of: 1 });
        encoded[0] = b'X';
        assert!(matches!(
            decode_frame(&encoded),
            Err(WireError::BadMagic(_))
        ));
        let mut encoded = encode_frame(&Frame::Ack { of: 1 });
        encoded[6] = 0x7F;
        assert_eq!(
            decode_frame(&encoded),
            Err(WireError::UnknownFrameType(0x7F))
        );
    }

    #[test]
    fn corrupt_length_field_is_rejected_without_allocating() {
        let p = sample_payload();
        let mut encoded = encode_frame(&Frame::MeetRequest(p));
        // Clobber the page-count field (first u32 after world_score).
        let off = HEADER_LEN + 8;
        encoded[off..off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            decode_frame(&encoded),
            Err(WireError::Malformed("length field overruns body"))
        );
    }

    #[test]
    fn oversized_declared_body_is_rejected() {
        let mut encoded = encode_frame(&Frame::Ack { of: 1 });
        encoded[8..12].copy_from_slice(&(MAX_BODY_LEN as u32 + 1).to_le_bytes());
        assert_eq!(
            decode_frame(&encoded),
            Err(WireError::OversizedBody(MAX_BODY_LEN + 1))
        );
    }

    #[test]
    fn trailing_bytes_in_body_are_rejected() {
        let mut encoded = encode_frame(&Frame::Ack { of: 1 });
        encoded.push(0xAB);
        encoded[8..12].copy_from_slice(&2u32.to_le_bytes());
        assert_eq!(
            decode_frame(&encoded),
            Err(WireError::Malformed("trailing bytes in body"))
        );
    }
}
