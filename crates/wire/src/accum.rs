//! Incremental frame accumulation for non-blocking transports.
//!
//! A [`FrameAccumulator`] is fed arbitrary byte chunks as a socket
//! produces them and yields complete decoded frames in arrival order.
//! It validates the fixed 12-byte header *as the bytes arrive* — bad
//! magic is rejected after four bytes, a version mismatch after six, a
//! non-zero flags byte or unknown frame type after eight, an oversized
//! body-length declaration after twelve — so a hostile or corrupt peer
//! is dropped before any multi-megabyte body is buffered. Yielded
//! frames are byte-identical to what a whole-buffer [`decode_frame`]
//! would produce (property-tested in `tests/proptests.rs`).
//!
//! Errors are sticky: a stream that violated the protocol once cannot
//! resynchronize (the framing has no resync marker), so every later
//! [`FrameAccumulator::next_frame`] repeats the same error and the
//! owning connection is expected to close.

use crate::frame::{
    decode_frame, frame_type_known, Frame, WireError, HEADER_LEN, MAGIC, MAX_BODY_LEN,
    PROTOCOL_VERSION,
};

/// Keep at most this much consumed prefix before compacting the buffer.
const COMPACT_THRESHOLD: usize = 64 * 1024;

/// Streaming decoder: buffer fed chunks, yield complete frames.
#[derive(Debug, Default)]
pub struct FrameAccumulator {
    buf: Vec<u8>,
    /// Bytes of `buf` already consumed by yielded frames.
    pos: usize,
    /// First protocol violation seen; sticky.
    error: Option<WireError>,
}

impl FrameAccumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        FrameAccumulator::default()
    }

    /// Append a chunk read off the wire. Chunks may split frames (and
    /// the header itself) at any byte boundary. Feeding a poisoned
    /// accumulator is a no-op.
    pub fn feed(&mut self, chunk: &[u8]) {
        if self.error.is_none() {
            self.buf.extend_from_slice(chunk);
        }
    }

    /// Bytes buffered but not yet consumed by a yielded frame.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// The sticky protocol violation, if one occurred.
    pub fn error(&self) -> Option<&WireError> {
        self.error.as_ref()
    }

    /// Yield the next complete frame, `Ok(None)` if more bytes are
    /// needed, or the (sticky) protocol violation. On success the
    /// returned `usize` is the frame's full encoded length — exactly
    /// [`crate::encoded_len`] of the frame.
    pub fn next_frame(&mut self) -> Result<Option<(Frame, usize)>, WireError> {
        if let Some(e) = &self.error {
            return Err(e.clone());
        }
        if let Err(e) = self.validate_header_prefix() {
            self.error = Some(e.clone());
            return Err(e);
        }
        if self.buffered() < HEADER_LEN {
            return Ok(None);
        }
        match decode_frame(&self.buf[self.pos..]) {
            Ok((frame, used)) => {
                self.pos += used;
                if self.pos == self.buf.len() {
                    self.buf.clear();
                    self.pos = 0;
                } else if self.pos > COMPACT_THRESHOLD {
                    self.buf.drain(..self.pos);
                    self.pos = 0;
                }
                Ok(Some((frame, used)))
            }
            Err(WireError::Truncated { .. }) => Ok(None),
            Err(e) => {
                self.error = Some(e.clone());
                Err(e)
            }
        }
    }

    /// Reject a doomed stream from the header prefix alone, before the
    /// full header (let alone the body) has arrived. Mirrors
    /// [`decode_frame`]'s validation order; the only check it cannot
    /// anticipate is the body parse itself.
    fn validate_header_prefix(&self) -> Result<(), WireError> {
        let head = &self.buf[self.pos..];
        let have = head.len().min(HEADER_LEN);
        if head[..have.min(4)] != MAGIC[..have.min(4)] {
            let mut magic = [0u8; 4];
            magic[..have.min(4)].copy_from_slice(&head[..have.min(4)]);
            return Err(WireError::BadMagic(magic));
        }
        if have >= 6 {
            let version = u16::from_le_bytes([head[4], head[5]]);
            if version != PROTOCOL_VERSION {
                return Err(WireError::VersionMismatch {
                    got: version,
                    expected: PROTOCOL_VERSION,
                });
            }
        }
        // Flags before type: decode_frame rejects non-zero flags before
        // it ever looks at the type byte, and a poisoned stream should
        // report the same violation either way.
        if have >= 8 && head[7] != 0 {
            return Err(WireError::Malformed("non-zero flags"));
        }
        if have >= 7 && !frame_type_known(head[6]) {
            return Err(WireError::UnknownFrameType(head[6]));
        }
        if have >= HEADER_LEN {
            let body_len = u32::from_le_bytes([head[8], head[9], head[10], head[11]]) as usize;
            if body_len > MAX_BODY_LEN {
                return Err(WireError::OversizedBody(body_len));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{encode_frame, encoded_len, ErrorCode};

    fn sample_frames() -> Vec<Frame> {
        vec![
            Frame::Hello {
                node_id: 7,
                num_pages: 40,
            },
            Frame::Ack { of: 5 },
            Frame::StatsRequest,
            Frame::Error {
                code: ErrorCode::Busy,
                detail: "later".to_string(),
            },
        ]
    }

    #[test]
    fn whole_buffer_yields_every_frame_in_order() {
        let frames = sample_frames();
        let mut bytes = Vec::new();
        for f in &frames {
            bytes.extend_from_slice(&encode_frame(f));
        }
        let mut acc = FrameAccumulator::new();
        acc.feed(&bytes);
        for want in &frames {
            let (got, used) = acc.next_frame().unwrap().expect("frame ready");
            assert_eq!(&got, want);
            assert_eq!(used, encoded_len(want));
        }
        assert_eq!(acc.next_frame().unwrap(), None);
        assert_eq!(acc.buffered(), 0);
    }

    #[test]
    fn one_byte_feeds_reassemble_the_stream() {
        let frames = sample_frames();
        let mut acc = FrameAccumulator::new();
        let mut got = Vec::new();
        for f in &frames {
            for &b in &encode_frame(f) {
                acc.feed(&[b]);
                while let Some((frame, _)) = acc.next_frame().unwrap() {
                    got.push(frame);
                }
            }
        }
        assert_eq!(got, frames);
    }

    #[test]
    fn bad_magic_rejected_after_four_bytes() {
        let mut acc = FrameAccumulator::new();
        acc.feed(b"JXPX");
        assert!(matches!(acc.next_frame(), Err(WireError::BadMagic(_))));
        // Sticky: feeding more does not revive the stream.
        acc.feed(&encode_frame(&Frame::Ack { of: 1 }));
        assert!(matches!(acc.next_frame(), Err(WireError::BadMagic(_))));
    }

    #[test]
    fn wrong_version_rejected_after_six_bytes() {
        let mut acc = FrameAccumulator::new();
        let mut head = Vec::from(MAGIC);
        head.extend_from_slice(&9u16.to_le_bytes());
        acc.feed(&head);
        assert!(matches!(
            acc.next_frame(),
            Err(WireError::VersionMismatch { got: 9, .. })
        ));
    }

    #[test]
    fn unknown_type_and_nonzero_flags_rejected_from_the_prefix() {
        let mut acc = FrameAccumulator::new();
        let mut head = Vec::from(MAGIC);
        head.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
        head.push(0x7f);
        acc.feed(&head);
        assert!(matches!(
            acc.next_frame(),
            Err(WireError::UnknownFrameType(0x7f))
        ));

        let mut acc = FrameAccumulator::new();
        let mut head = Vec::from(MAGIC);
        head.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
        head.push(1); // Hello
        head.push(0xff); // flags must be zero
        acc.feed(&head);
        assert!(matches!(acc.next_frame(), Err(WireError::Malformed(_))));
    }

    #[test]
    fn oversized_body_rejected_at_the_header_before_buffering_it() {
        let mut acc = FrameAccumulator::new();
        let mut head = Vec::from(MAGIC);
        head.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
        head.push(1);
        head.push(0);
        head.extend_from_slice(&((MAX_BODY_LEN as u32) + 1).to_le_bytes());
        acc.feed(&head);
        assert!(matches!(acc.next_frame(), Err(WireError::OversizedBody(_))));
    }

    #[test]
    fn incomplete_header_and_body_wait_for_more() {
        let frame = Frame::Hello {
            node_id: 1,
            num_pages: 2,
        };
        let bytes = encode_frame(&frame);
        let mut acc = FrameAccumulator::new();
        acc.feed(&bytes[..5]);
        assert_eq!(acc.next_frame().unwrap(), None);
        acc.feed(&bytes[5..HEADER_LEN + 3]);
        assert_eq!(acc.next_frame().unwrap(), None);
        acc.feed(&bytes[HEADER_LEN + 3..]);
        assert_eq!(acc.next_frame().unwrap(), Some((frame, bytes.len())));
    }
}
