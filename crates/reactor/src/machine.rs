// jxp-analyze: allow-file(D2, reason = "the reactor's connect-backoff, reply, and idle timers plus the loop-iteration histogram are wall-clock by definition; none of it feeds score accounting — meeting results flow through tickets that the cluster driver harvests in deterministic schedule order")

//! The reactor loop and its per-connection state machines.
//!
//! One pass pumps: intake (new listeners + submissions) → accepts →
//! server connections (read → accumulate → dispatch inline → queue
//! reply) → client connections (connect/backoff → write → read →
//! complete FIFO waiters) → timers (reply deadlines, idle closes).
//! A pass that moved no bytes and fired no timers sleeps
//! `cfg.idle_sleep` before polling again.
//!
//! Client connections walk Connecting → Handshake → Ready → (Failed);
//! server connections walk Serving → Draining → closed. "Handshake"
//! here is the non-blocking/nodelay setup plus the implicit stream
//! validation `connect` gives us on loopback — the JXP protocol itself
//! needs no hello exchange on a multiplexed connection because frames
//! are self-describing.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use jxp_telemetry::lock_unpoisoned;
use jxp_wire::{encode_frame, FrameAccumulator};

use crate::pending::Pending;
use crate::{FrameService, ReactorError, Shared, Submission};

const READ_CHUNK: usize = 64 * 1024;

struct Acceptor {
    listener: TcpListener,
    service: Arc<dyn FrameService>,
}

/// An accepted connection being served.
struct ServerConn {
    stream: TcpStream,
    service: Arc<dyn FrameService>,
    acc: FrameAccumulator,
    wbuf: Vec<u8>,
    wpos: usize,
    /// Flush what's queued, then close (peer EOF, service stall, or a
    /// framing violation).
    draining: bool,
    dead: bool,
    last_activity: Instant,
}

enum ClientPhase {
    /// Not yet connected; `retry_at` gates the next attempt while
    /// backing off after a refusal.
    Connecting {
        attempt: u32,
        retry_at: Option<Instant>,
    },
    /// Connected, non-blocking, nodelay set: requests flow.
    Ready,
}

struct Waiter {
    pending: Arc<Pending>,
    /// When the *front* waiter's reply must have arrived. Restarted on
    /// connect success and after each completed reply, so a pipeline of
    /// k requests gets k budgets.
    deadline: Instant,
}

/// An outbound connection multiplexing every request for one peer
/// address, FIFO.
struct ClientConn {
    addr: SocketAddr,
    phase: ClientPhase,
    stream: Option<TcpStream>,
    acc: FrameAccumulator,
    wbuf: Vec<u8>,
    wpos: usize,
    awaiting: VecDeque<Waiter>,
    dead: bool,
    last_activity: Instant,
}

impl ClientConn {
    fn new(addr: SocketAddr, now: Instant) -> ClientConn {
        ClientConn {
            addr,
            phase: ClientPhase::Connecting {
                attempt: 0,
                retry_at: None,
            },
            stream: None,
            acc: FrameAccumulator::new(),
            wbuf: Vec::new(),
            wpos: 0,
            awaiting: VecDeque::new(),
            dead: false,
            last_activity: now,
        }
    }
}

pub(crate) fn run_loop(shared: Arc<Shared>) {
    let mut acceptors: Vec<Acceptor> = Vec::new();
    let mut servers: Vec<ServerConn> = Vec::new();
    let mut clients: Vec<ClientConn> = Vec::new();
    let mut scratch = vec![0u8; READ_CHUNK];

    loop {
        let began = Instant::now();
        let mut dispatched: u64 = 0;
        let mut did_work = false;

        let stopping = shared.stop.load(Ordering::SeqCst);

        // Intake: adopt new listeners, queue new submissions.
        {
            let mut intake = lock_unpoisoned(&shared.intake);
            for (listener, service) in intake.listeners.drain(..) {
                acceptors.push(Acceptor { listener, service });
                did_work = true;
            }
            for sub in intake.submissions.drain(..) {
                did_work = true;
                if stopping {
                    sub.pending.resolve(&shared, Err(ReactorError::Closed));
                } else {
                    enqueue(&shared, &mut clients, sub, began);
                }
            }
        }

        if stopping {
            for conn in &mut clients {
                fail_all(&shared, conn, ReactorError::Closed);
            }
            break;
        }

        // Accept ready connections on every listener.
        for acceptor in &acceptors {
            loop {
                match acceptor.listener.accept() {
                    Ok((stream, _peer)) => {
                        did_work = true;
                        if stream.set_nonblocking(true).is_err() {
                            continue;
                        }
                        let _ = stream.set_nodelay(true);
                        servers.push(ServerConn {
                            stream,
                            service: Arc::clone(&acceptor.service),
                            acc: FrameAccumulator::new(),
                            wbuf: Vec::new(),
                            wpos: 0,
                            draining: false,
                            dead: false,
                            last_activity: began,
                        });
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => break,
                }
            }
        }

        // Serve: read requests, dispatch inline, queue + flush replies.
        for conn in &mut servers {
            did_work |= pump_server(conn, &mut scratch, &mut dispatched);
        }

        // Clients: connect, write queued requests, read replies.
        for conn in &mut clients {
            did_work |= pump_client(&shared, conn, &mut scratch, &mut dispatched);
        }

        // Timers: reply deadlines and idle closes.
        let now = Instant::now();
        for conn in &mut clients {
            did_work |= client_timers(&shared, conn, now);
        }
        for conn in &mut servers {
            if !conn.dead
                && conn.wpos == conn.wbuf.len()
                && now.duration_since(conn.last_activity) >= shared.cfg.idle_timeout
            {
                conn.dead = true;
                did_work = true;
            }
        }

        clients.retain(|c| !c.dead);
        servers.retain(|c| !c.dead);

        if dispatched > 0 {
            shared.metrics.wakeup_dispatch.observe(dispatched as f64);
        }
        if did_work {
            shared
                .metrics
                .loop_iteration
                .observe(began.elapsed().as_secs_f64());
        } else {
            std::thread::sleep(shared.cfg.idle_sleep);
        }
    }
}

/// Route a submission onto its peer's connection, dialing one if none
/// is live.
fn enqueue(shared: &Shared, clients: &mut Vec<ClientConn>, sub: Submission, now: Instant) {
    let deadline = now + shared.cfg.reply_timeout;
    let waiter = Waiter {
        pending: sub.pending,
        deadline,
    };
    if let Some(conn) = clients.iter_mut().find(|c| c.addr == sub.addr && !c.dead) {
        conn.wbuf.extend_from_slice(&sub.bytes);
        conn.awaiting.push_back(waiter);
    } else {
        let mut conn = ClientConn::new(sub.addr, now);
        conn.wbuf.extend_from_slice(&sub.bytes);
        conn.awaiting.push_back(waiter);
        clients.push(conn);
    }
}

/// Resolve every outstanding waiter on `conn` with `error`.
fn fail_all(shared: &Shared, conn: &mut ClientConn, error: ReactorError) {
    while let Some(waiter) = conn.awaiting.pop_front() {
        waiter.pending.resolve(shared, Err(error.clone()));
    }
}

/// Flush as much of `wbuf` as the socket accepts. Returns whether any
/// bytes moved; sets `dead` on hard write errors.
fn flush(stream: &mut TcpStream, wbuf: &mut Vec<u8>, wpos: &mut usize, dead: &mut bool) -> bool {
    let mut progressed = false;
    while *wpos < wbuf.len() {
        match stream.write(&wbuf[*wpos..]) {
            Ok(0) => {
                *dead = true;
                break;
            }
            Ok(n) => {
                *wpos += n;
                progressed = true;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                *dead = true;
                break;
            }
        }
    }
    if !wbuf.is_empty() && *wpos == wbuf.len() {
        wbuf.clear();
        *wpos = 0;
    }
    progressed
}

fn pump_server(conn: &mut ServerConn, scratch: &mut [u8], dispatched: &mut u64) -> bool {
    if conn.dead {
        return false;
    }
    let mut progressed = flush(
        &mut conn.stream,
        &mut conn.wbuf,
        &mut conn.wpos,
        &mut conn.dead,
    );
    if conn.dead {
        return true;
    }
    if conn.draining {
        if conn.wpos == conn.wbuf.len() {
            conn.dead = true;
            return true;
        }
        return progressed;
    }
    loop {
        match conn.stream.read(scratch) {
            Ok(0) => {
                // Peer sent EOF: everything it asked for is either
                // answered below or already queued; drain and close.
                conn.draining = true;
                progressed = true;
                break;
            }
            Ok(n) => {
                progressed = true;
                conn.last_activity = Instant::now();
                conn.acc.feed(&scratch[..n]);
                loop {
                    match conn.acc.next_frame() {
                        Ok(Some((frame, _used))) => {
                            *dispatched += 1;
                            // Journal-before-reply: serve() runs to
                            // completion here — a JxpNode writes its
                            // Serve WAL record inside — before the
                            // reply bytes are queued for the socket.
                            match conn.service.serve(frame) {
                                Some(reply) => {
                                    conn.wbuf.extend_from_slice(&encode_frame(&reply));
                                }
                                None => {
                                    conn.draining = true;
                                    break;
                                }
                            }
                        }
                        Ok(None) => break,
                        Err(_) => {
                            // Framing violation: no resync is possible,
                            // flush queued replies and close.
                            conn.draining = true;
                            break;
                        }
                    }
                }
                if conn.draining {
                    break;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                break;
            }
        }
    }
    if !conn.dead {
        progressed |= flush(
            &mut conn.stream,
            &mut conn.wbuf,
            &mut conn.wpos,
            &mut conn.dead,
        );
        if conn.draining && !conn.dead && conn.wpos == conn.wbuf.len() {
            conn.dead = true;
        }
    }
    progressed
}

fn pump_client(
    shared: &Shared,
    conn: &mut ClientConn,
    scratch: &mut [u8],
    dispatched: &mut u64,
) -> bool {
    if conn.dead {
        return false;
    }
    let mut progressed = false;
    if let ClientPhase::Connecting { attempt, retry_at } = conn.phase {
        let now = Instant::now();
        if let Some(at) = retry_at {
            if now < at {
                return false;
            }
        }
        // Plain `TcpStream::connect`: on loopback (the only place this
        // reactor dials) it resolves synchronously — established or
        // refused — so the loop never blocks on it. The blocking
        // `connect_timeout` variant is forbidden here (analyze rule N1).
        match TcpStream::connect(conn.addr) {
            Ok(stream) => {
                progressed = true;
                // Handshake: non-blocking + nodelay before any frame.
                if stream.set_nonblocking(true).is_err() {
                    fail_all(
                        shared,
                        conn,
                        ReactorError::Unreachable(format!("{}: handshake failed", conn.addr)),
                    );
                    conn.dead = true;
                    return true;
                }
                let _ = stream.set_nodelay(true);
                conn.stream = Some(stream);
                conn.phase = ClientPhase::Ready;
                conn.last_activity = now;
                // The reply clocks start at connect, not at submit.
                let deadline = now + shared.cfg.reply_timeout;
                for waiter in &mut conn.awaiting {
                    waiter.deadline = deadline;
                }
            }
            Err(e) => {
                if attempt >= shared.cfg.connect_retries {
                    fail_all(
                        shared,
                        conn,
                        ReactorError::Unreachable(format!("{}: {e}", conn.addr)),
                    );
                    conn.dead = true;
                    return true;
                }
                conn.phase = ClientPhase::Connecting {
                    attempt: attempt + 1,
                    retry_at: Some(now + backoff_delay(&shared.cfg, attempt)),
                };
                return true;
            }
        }
    }

    // Take the stream out so the read loop below can touch the other
    // fields (accumulator, waiters) without aliasing it.
    let mut stream = conn
        .stream
        .take()
        .expect("a Ready client connection has a stream");
    progressed |= flush(&mut stream, &mut conn.wbuf, &mut conn.wpos, &mut conn.dead);
    if conn.dead {
        fail_all(
            shared,
            conn,
            ReactorError::Unreachable(format!("{}: connection closed while writing", conn.addr)),
        );
        return true;
    }
    loop {
        match stream.read(scratch) {
            Ok(0) => {
                progressed = true;
                if !conn.awaiting.is_empty() {
                    // EOF with requests outstanding: the peer stalled
                    // or restarted. The retry layer resubmits, which
                    // dials a fresh connection.
                    fail_all(
                        shared,
                        conn,
                        ReactorError::Unreachable(format!("{}: connection closed", conn.addr)),
                    );
                }
                conn.dead = true;
                break;
            }
            Ok(n) => {
                progressed = true;
                conn.last_activity = Instant::now();
                conn.acc.feed(&scratch[..n]);
                loop {
                    match conn.acc.next_frame() {
                        Ok(Some((frame, _used))) => {
                            *dispatched += 1;
                            match conn.awaiting.pop_front() {
                                Some(waiter) => waiter.pending.resolve(shared, Ok(frame)),
                                None => {
                                    // A reply nobody asked for: the
                                    // stream is not trustworthy.
                                    conn.dead = true;
                                    break;
                                }
                            }
                            // Per-hop clock: the next pipelined reply
                            // gets a fresh budget.
                            if let Some(front) = conn.awaiting.front_mut() {
                                front.deadline = Instant::now() + shared.cfg.reply_timeout;
                            }
                        }
                        Ok(None) => break,
                        Err(e) => {
                            fail_all(shared, conn, ReactorError::Wire(e));
                            conn.dead = true;
                            break;
                        }
                    }
                }
                if conn.dead {
                    break;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => {
                fail_all(
                    shared,
                    conn,
                    ReactorError::Unreachable(format!("{}: {e}", conn.addr)),
                );
                conn.dead = true;
                break;
            }
        }
    }
    conn.stream = Some(stream);
    progressed
}

/// Fire reply deadlines and idle closes for one client connection.
fn client_timers(shared: &Shared, conn: &mut ClientConn, now: Instant) -> bool {
    if conn.dead || !matches!(conn.phase, ClientPhase::Ready) {
        return false;
    }
    if let Some(front) = conn.awaiting.front() {
        if now >= front.deadline {
            // Giving up on the front reply desyncs the FIFO pairing,
            // so everything pipelined behind it fails with it; the
            // retry layer resubmits on a fresh connection.
            fail_all(shared, conn, ReactorError::Timeout);
            conn.dead = true;
            return true;
        }
    } else if now.duration_since(conn.last_activity) >= shared.cfg.idle_timeout {
        conn.dead = true;
        return true;
    }
    false
}

fn backoff_delay(cfg: &crate::ReactorConfig, retry: u32) -> Duration {
    let factor = 1u32 << retry.min(16);
    (cfg.backoff_base * factor).min(cfg.backoff_max)
}
