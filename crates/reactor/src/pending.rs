// jxp-analyze: allow-file(D2, reason = "the ticket wait backstop is a wall-clock cap on a condvar by definition; it fires only when every loop-side timer already failed, and its outcome feeds the retry layer, never score accounting")

//! Completion handles: the bridge between submitter threads and the
//! reactor loop.

use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use jxp_telemetry::lock_unpoisoned;
use jxp_wire::{encoded_len, Frame};

use crate::{ReactorConfig, ReactorError, Shared};

pub(crate) enum PendingState {
    /// Submitted, unresolved.
    Waiting,
    /// Resolved by the loop; result not yet taken by the waiter.
    Done(Result<Frame, ReactorError>),
    /// The waiter gave up (backstop cap); a late loop resolution is
    /// dropped without touching the in-flight count again.
    Abandoned,
}

/// One request's completion slot. The in-flight count is decremented by
/// whichever side makes the `Waiting → Done/Abandoned` transition, so
/// each submission decrements exactly once.
pub(crate) struct Pending {
    state: Mutex<PendingState>,
    cv: Condvar,
}

impl Pending {
    pub(crate) fn new() -> Pending {
        Pending {
            state: Mutex::new(PendingState::Waiting),
            cv: Condvar::new(),
        }
    }

    /// Loop side: deliver the result. No-op if the waiter already
    /// abandoned or the request was somehow resolved twice.
    pub(crate) fn resolve(&self, shared: &Shared, result: Result<Frame, ReactorError>) {
        let mut state = lock_unpoisoned(&self.state);
        if matches!(*state, PendingState::Waiting) {
            *state = PendingState::Done(result);
            shared.inflight_dec();
            self.cv.notify_all();
        }
    }
}

/// Receipt for a submitted request; redeem with [`Ticket::wait`] or
/// [`Ticket::wait_full`]. Tickets let one driver thread keep hundreds
/// of requests in flight and harvest them in any order.
pub struct Ticket {
    pending: Arc<Pending>,
    shared: Arc<Shared>,
    bytes_sent: u64,
}

impl Ticket {
    pub(crate) fn new(pending: Arc<Pending>, shared: Arc<Shared>, bytes_sent: u64) -> Ticket {
        Ticket {
            pending,
            shared,
            bytes_sent,
        }
    }

    /// Encoded size of the submitted request frame.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    /// Block until the loop resolves this request.
    pub fn wait(self) -> Result<Frame, ReactorError> {
        self.wait_full().map(|(frame, _, _)| frame)
    }

    /// Like [`Ticket::wait`], but also returns `(bytes_sent,
    /// bytes_received)` alongside the reply.
    ///
    /// The wait carries a generous backstop cap (several reply budgets
    /// plus the whole connect/backoff budget): every ordinary failure —
    /// refused connect, reply timeout, protocol violation, shutdown —
    /// is resolved by the loop long before the cap, so hitting it means
    /// the loop itself is wedged; the request is then abandoned and
    /// reported as [`ReactorError::Timeout`].
    pub fn wait_full(self) -> Result<(Frame, u64, u64), ReactorError> {
        let deadline = Instant::now() + wait_cap(&self.shared.cfg);
        let mut state = lock_unpoisoned(&self.pending.state);
        loop {
            match &*state {
                PendingState::Done(result) => {
                    let result = result.clone();
                    return result.map(|frame| {
                        let received = encoded_len(&frame) as u64;
                        (frame, self.bytes_sent, received)
                    });
                }
                PendingState::Abandoned => return Err(ReactorError::Timeout),
                PendingState::Waiting => {}
            }
            let now = Instant::now();
            if now >= deadline {
                *state = PendingState::Abandoned;
                self.shared.inflight_dec();
                return Err(ReactorError::Timeout);
            }
            state = match self.pending.cv.wait_timeout(state, deadline - now) {
                Ok((guard, _)) => guard,
                Err(poisoned) => poisoned.into_inner().0,
            };
        }
    }
}

fn wait_cap(cfg: &ReactorConfig) -> Duration {
    let connect_budget = (cfg.connect_timeout + cfg.backoff_max) * (cfg.connect_retries + 1);
    cfg.reply_timeout * 8 + connect_budget + Duration::from_secs(2)
}
