#![deny(missing_docs)]
//! A dependency-light, hand-rolled non-blocking reactor for the JXP
//! wire protocol.
//!
//! One loop thread owns every socket: listeners accepted from
//! [`ReactorHandle::listen`], server connections whose frames are
//! dispatched inline to a [`FrameService`], and client connections that
//! pipeline requests FIFO per peer. All sockets are `std::net` streams
//! set non-blocking; readiness is discovered by polling reads/writes
//! until `WouldBlock` and sleeping a short, configurable interval only
//! when a full pass found no work. That trades a little idle latency
//! for zero platform-specific poller code — and it bounds the thread
//! count: a 256-node single-process cluster runs on exactly one reactor
//! thread plus whoever calls [`ReactorHandle::submit`], no matter how
//! many meetings are in flight.
//!
//! Two properties the rest of the system leans on:
//!
//! - **Journal-before-reply.** A server frame is handed to
//!   [`FrameService::serve`] synchronously on the loop thread; the
//!   reply bytes are queued for write only after `serve` returns. A
//!   `JxpNode` journals its Serve record inside `handle()` before
//!   returning the reply frame, so the WAL write strictly precedes the
//!   reply hitting the socket — the same ordering the thread-per-
//!   connection transport provided.
//! - **FIFO per peer.** Requests to one address share one connection
//!   and complete in submission order; replies are matched to waiters
//!   by position. The cluster driver submits in schedule order and
//!   collects in schedule order, keeping reactor runs bit-identical to
//!   loopback and threaded-TCP runs.
//!
//! Requests are submitted as [`Ticket`]s (completion handles backed by
//! a mutex + condvar) so a single driver thread can hold hundreds of
//! meetings in flight; [`ReactorHandle::request`] wraps submit + wait
//! for callers that want the old blocking shape.

mod machine;
mod pending;

pub use pending::Ticket;

use std::fmt;
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use jxp_telemetry::{lock_unpoisoned, Gauge, Histogram, Registry};
use jxp_wire::{encode_frame, Frame, WireError};

use pending::Pending;

/// Tunables for the reactor's timers and retry policy.
#[derive(Debug, Clone)]
pub struct ReactorConfig {
    /// Per-attempt connect budget. Plain `TcpStream::connect` on
    /// loopback resolves synchronously (established or refused), so
    /// this only sizes the [`Ticket`] wait backstop.
    pub connect_timeout: Duration,
    /// How long the front-of-queue reply on a connection may take. The
    /// clock restarts each time a reply completes, so a pipeline of k
    /// requests gets k budgets, not one.
    pub reply_timeout: Duration,
    /// Close connections with no traffic and no waiters after this long.
    pub idle_timeout: Duration,
    /// Reconnect attempts after a refused connect before the pending
    /// requests fail with `Unreachable`.
    pub connect_retries: u32,
    /// First reconnect backoff; doubles per retry.
    pub backoff_base: Duration,
    /// Reconnect backoff cap.
    pub backoff_max: Duration,
    /// Sleep between polling passes that found no work.
    pub idle_sleep: Duration,
}

impl Default for ReactorConfig {
    fn default() -> Self {
        ReactorConfig {
            connect_timeout: Duration::from_millis(500),
            reply_timeout: Duration::from_millis(1500),
            idle_timeout: Duration::from_secs(5),
            connect_retries: 2,
            backoff_base: Duration::from_millis(10),
            backoff_max: Duration::from_millis(80),
            idle_sleep: Duration::from_micros(200),
        }
    }
}

/// Failures surfaced to a [`Ticket`] waiter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReactorError {
    /// The peer refused the connection (after retries) or closed it
    /// with requests still outstanding. Retriable: a fresh submit dials
    /// a fresh connection.
    Unreachable(String),
    /// The front-of-queue reply deadline (or the waiter's backstop cap)
    /// expired.
    Timeout,
    /// The peer sent bytes that violate the framing.
    Wire(WireError),
    /// The reactor shut down with the request still in flight.
    Closed,
}

impl fmt::Display for ReactorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReactorError::Unreachable(detail) => write!(f, "peer unreachable: {detail}"),
            ReactorError::Timeout => write!(f, "timed out waiting for a reply"),
            ReactorError::Wire(e) => write!(f, "wire protocol violation: {e:?}"),
            ReactorError::Closed => write!(f, "reactor shut down"),
        }
    }
}

impl std::error::Error for ReactorError {}

/// Server-side frame handler, invoked inline on the reactor loop
/// thread in frame arrival order.
///
/// Returning `None` drains the connection: already-queued replies are
/// flushed and the socket closes, which the client surfaces as
/// [`ReactorError::Unreachable`] on everything still awaiting — exactly
/// how a stalled peer should look to the retry layer.
pub trait FrameService: Send + Sync {
    /// Handle one request frame and produce the reply, or `None` to
    /// drop the connection.
    fn serve(&self, frame: Frame) -> Option<Frame>;
}

/// Reactor telemetry, registrable on a shared [`Registry`] so the
/// gauges and histograms ride the existing Prometheus/JSON/table
/// exporters and the cluster's `--metrics-listen` endpoint.
#[derive(Clone)]
pub struct ReactorMetrics {
    /// Requests submitted but not yet resolved (`jxp_node_inflight_meetings`).
    pub inflight: Arc<Gauge>,
    /// High-water mark of `inflight` (`jxp_node_inflight_meetings_peak`).
    pub inflight_peak: Arc<Gauge>,
    /// Frames dispatched per loop wakeup that dispatched anything
    /// (`jxp_reactor_wakeup_dispatch`).
    pub wakeup_dispatch: Arc<Histogram>,
    /// Seconds spent in loop passes that did work
    /// (`jxp_reactor_loop_iteration_seconds`).
    pub loop_iteration: Arc<Histogram>,
}

impl ReactorMetrics {
    /// Metrics registered on `reg` under the exported names.
    pub fn registered(reg: &Registry) -> Self {
        ReactorMetrics {
            inflight: reg.gauge("jxp_node_inflight_meetings"),
            inflight_peak: reg.gauge("jxp_node_inflight_meetings_peak"),
            wakeup_dispatch: reg.histogram(
                "jxp_reactor_wakeup_dispatch",
                &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0],
            ),
            loop_iteration: reg.histogram(
                "jxp_reactor_loop_iteration_seconds",
                &[1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1],
            ),
        }
    }

    /// Standalone metrics not attached to any registry (tests, tools).
    pub fn detached() -> Self {
        ReactorMetrics {
            inflight: Arc::new(Gauge::new()),
            inflight_peak: Arc::new(Gauge::new()),
            wakeup_dispatch: Arc::new(Histogram::new(&[
                1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0,
            ])),
            loop_iteration: Arc::new(Histogram::new(&[1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1])),
        }
    }
}

/// One queued outbound request: destination, encoded frame, completion.
pub(crate) struct Submission {
    pub(crate) addr: SocketAddr,
    pub(crate) bytes: Vec<u8>,
    pub(crate) pending: Arc<Pending>,
}

/// Work handed from callers to the loop thread.
pub(crate) struct Intake {
    pub(crate) submissions: Vec<Submission>,
    pub(crate) listeners: Vec<(TcpListener, Arc<dyn FrameService>)>,
}

/// State shared between handles, tickets, and the loop thread.
pub(crate) struct Shared {
    pub(crate) cfg: ReactorConfig,
    pub(crate) stop: AtomicBool,
    pub(crate) intake: Mutex<Intake>,
    pub(crate) metrics: ReactorMetrics,
    pub(crate) inflight: AtomicU64,
    pub(crate) peak: AtomicU64,
}

impl Shared {
    /// Count a submission. Called on the submitter's thread, so the
    /// in-flight gauge rises the moment a request exists, not when the
    /// loop first sees it.
    pub(crate) fn inflight_inc(&self) {
        let now = self.inflight.fetch_add(1, Ordering::SeqCst) + 1;
        let peak = self.peak.fetch_max(now, Ordering::SeqCst).max(now);
        self.metrics.inflight.set(now as f64);
        self.metrics.inflight_peak.set(peak as f64);
    }

    /// Count a resolution (reply, failure, or abandonment) — each
    /// submission decrements exactly once, enforced by the
    /// [`Pending`] state transition that calls this.
    pub(crate) fn inflight_dec(&self) {
        let now = self.inflight.fetch_sub(1, Ordering::SeqCst) - 1;
        self.metrics.inflight.set(now as f64);
    }
}

/// Owns the loop thread. Dropping stops the loop (resolving anything
/// still in flight with [`ReactorError::Closed`]) and joins it.
pub struct Reactor {
    shared: Arc<Shared>,
    thread: Option<JoinHandle<()>>,
}

impl Reactor {
    /// Start the reactor's single loop thread.
    pub fn start(cfg: ReactorConfig, metrics: ReactorMetrics) -> Reactor {
        let shared = Arc::new(Shared {
            cfg,
            stop: AtomicBool::new(false),
            intake: Mutex::new(Intake {
                submissions: Vec::new(),
                listeners: Vec::new(),
            }),
            metrics,
            inflight: AtomicU64::new(0),
            peak: AtomicU64::new(0),
        });
        let loop_shared = Arc::clone(&shared);
        let thread = std::thread::Builder::new()
            .name("jxp-reactor".to_string())
            .spawn(move || machine::run_loop(loop_shared))
            .expect("spawn reactor loop thread");
        Reactor {
            shared,
            thread: Some(thread),
        }
    }

    /// A cheap, cloneable handle for binding listeners and submitting
    /// requests.
    pub fn handle(&self) -> ReactorHandle {
        ReactorHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// High-water mark of concurrently in-flight requests over the
    /// reactor's lifetime.
    pub fn peak_inflight(&self) -> u64 {
        self.shared.peak.load(Ordering::SeqCst)
    }
}

impl Drop for Reactor {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

/// Handle onto a running [`Reactor`].
#[derive(Clone)]
pub struct ReactorHandle {
    shared: Arc<Shared>,
}

impl ReactorHandle {
    /// Bind a loopback listener whose connections are served by
    /// `service`, and return its address for routing.
    pub fn listen(&self, service: Arc<dyn FrameService>) -> io::Result<SocketAddr> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        lock_unpoisoned(&self.shared.intake)
            .listeners
            .push((listener, service));
        Ok(addr)
    }

    /// Queue `frame` for `addr` and return a [`Ticket`] to wait on.
    /// This is the multiplexing primitive: submit hundreds, then wait.
    pub fn submit(&self, addr: SocketAddr, frame: &Frame) -> Ticket {
        let bytes = encode_frame(frame);
        let bytes_sent = bytes.len() as u64;
        let pending = Arc::new(Pending::new());
        self.shared.inflight_inc();
        if self.shared.stop.load(Ordering::SeqCst) {
            // The loop is gone (or going); resolve immediately rather
            // than letting the waiter run out its backstop cap.
            pending.resolve(&self.shared, Err(ReactorError::Closed));
        } else {
            lock_unpoisoned(&self.shared.intake)
                .submissions
                .push(Submission {
                    addr,
                    bytes,
                    pending: Arc::clone(&pending),
                });
        }
        Ticket::new(pending, Arc::clone(&self.shared), bytes_sent)
    }

    /// Submit and block for the reply: `(reply, bytes_sent,
    /// bytes_received)`. The blocking facade over [`ReactorHandle::submit`].
    pub fn request(
        &self,
        addr: SocketAddr,
        frame: &Frame,
    ) -> Result<(Frame, u64, u64), ReactorError> {
        self.submit(addr, frame).wait_full()
    }
}
