//! End-to-end reactor tests over real loopback sockets: request
//! multiplexing, FIFO pipelining, failure surfacing, and the in-flight
//! accounting the cluster's acceptance gate reads.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use jxp_reactor::{FrameService, Reactor, ReactorConfig, ReactorError, ReactorMetrics};
use jxp_wire::Frame;

/// Replies to Hello with `node_id + 1000` so ordering mistakes show up
/// as wrong payloads, not just hangs.
struct Echo;

impl FrameService for Echo {
    fn serve(&self, frame: Frame) -> Option<Frame> {
        match frame {
            Frame::Hello { node_id, num_pages } => Some(Frame::Hello {
                node_id: node_id + 1000,
                num_pages,
            }),
            other => Some(other),
        }
    }
}

/// Never replies: the reactor's view of a stalled peer.
struct Stall;

impl FrameService for Stall {
    fn serve(&self, _frame: Frame) -> Option<Frame> {
        None
    }
}

/// Blocks every serve call on a shared gate the test holds, freezing
/// the loop so submissions pile up and the in-flight gauge is exact.
struct Gated(Arc<Mutex<()>>);

impl FrameService for Gated {
    fn serve(&self, frame: Frame) -> Option<Frame> {
        let _open = self.0.lock().unwrap();
        Some(frame)
    }
}

fn quick_config() -> ReactorConfig {
    ReactorConfig {
        reply_timeout: Duration::from_millis(400),
        backoff_base: Duration::from_millis(2),
        backoff_max: Duration::from_millis(8),
        ..ReactorConfig::default()
    }
}

#[test]
fn request_roundtrips_through_a_listener() {
    let reactor = Reactor::start(quick_config(), ReactorMetrics::detached());
    let handle = reactor.handle();
    let addr = handle.listen(Arc::new(Echo)).unwrap();

    let frame = Frame::Hello {
        node_id: 7,
        num_pages: 40,
    };
    let (reply, sent, received) = handle.request(addr, &frame).unwrap();
    assert_eq!(
        reply,
        Frame::Hello {
            node_id: 1007,
            num_pages: 40
        }
    );
    assert_eq!(sent, jxp_wire::encoded_len(&frame) as u64);
    assert_eq!(received, jxp_wire::encoded_len(&reply) as u64);
}

#[test]
fn hundreds_of_pipelined_requests_complete_in_fifo_order() {
    let reactor = Reactor::start(quick_config(), ReactorMetrics::detached());
    let handle = reactor.handle();
    let addr = handle.listen(Arc::new(Echo)).unwrap();

    let tickets: Vec<_> = (0..300)
        .map(|i| {
            handle.submit(
                addr,
                &Frame::Hello {
                    node_id: i,
                    num_pages: i * 2,
                },
            )
        })
        .collect();
    for (i, ticket) in tickets.into_iter().enumerate() {
        let reply = ticket.wait().unwrap();
        assert_eq!(
            reply,
            Frame::Hello {
                node_id: i as u64 + 1000,
                num_pages: i as u64 * 2,
            }
        );
    }
    assert!(reactor.peak_inflight() >= 1);
}

#[test]
fn requests_fan_out_across_many_listeners() {
    let reactor = Reactor::start(quick_config(), ReactorMetrics::detached());
    let handle = reactor.handle();
    let addrs: Vec<_> = (0..16)
        .map(|_| handle.listen(Arc::new(Echo)).unwrap())
        .collect();

    let tickets: Vec<_> = (0..160u64)
        .map(|i| {
            handle.submit(
                addrs[(i % 16) as usize],
                &Frame::Hello {
                    node_id: i,
                    num_pages: 1,
                },
            )
        })
        .collect();
    for (i, ticket) in tickets.into_iter().enumerate() {
        assert_eq!(
            ticket.wait().unwrap(),
            Frame::Hello {
                node_id: i as u64 + 1000,
                num_pages: 1
            }
        );
    }
}

#[test]
fn inflight_gauge_counts_submissions_until_resolution() {
    let gate = Arc::new(Mutex::new(()));
    let metrics = ReactorMetrics::detached();
    let reactor = Reactor::start(quick_config(), metrics.clone());
    let handle = reactor.handle();
    let addr = handle.listen(Arc::new(Gated(Arc::clone(&gate)))).unwrap();

    let tickets: Vec<_> = {
        // While the gate is held the loop freezes inside the first
        // serve call, so no submission can resolve: the gauge must
        // read exactly N and the peak must record it.
        let _hold = gate.lock().unwrap();
        let tickets: Vec<_> = (0..200u64)
            .map(|i| {
                handle.submit(
                    addr,
                    &Frame::Hello {
                        node_id: i,
                        num_pages: 0,
                    },
                )
            })
            .collect();
        assert_eq!(metrics.inflight.get(), 200.0);
        assert!(reactor.peak_inflight() >= 200);
        tickets
    };
    for ticket in tickets {
        ticket.wait().unwrap();
    }
    assert_eq!(metrics.inflight.get(), 0.0);
    assert_eq!(metrics.inflight_peak.get(), 200.0);
}

#[test]
fn a_stalled_service_drains_the_connection_and_fails_the_waiters() {
    let reactor = Reactor::start(quick_config(), ReactorMetrics::detached());
    let handle = reactor.handle();
    let addr = handle.listen(Arc::new(Stall)).unwrap();

    let err = handle
        .request(
            addr,
            &Frame::Hello {
                node_id: 1,
                num_pages: 1,
            },
        )
        .unwrap_err();
    assert!(
        matches!(err, ReactorError::Unreachable(_)),
        "stall should surface as a closed connection, got {err:?}"
    );
}

#[test]
fn a_dead_peer_fails_unreachable_after_bounded_retries() {
    let reactor = Reactor::start(quick_config(), ReactorMetrics::detached());
    let handle = reactor.handle();
    // Bind then drop: the port is freshly refused, not black-holed.
    let addr = {
        let listener = std::net::TcpListener::bind(("127.0.0.1", 0)).unwrap();
        listener.local_addr().unwrap()
    };

    let err = handle
        .request(
            addr,
            &Frame::Hello {
                node_id: 1,
                num_pages: 1,
            },
        )
        .unwrap_err();
    assert!(matches!(err, ReactorError::Unreachable(_)), "got {err:?}");
}

#[test]
fn idle_connections_close_and_reopen_transparently() {
    let cfg = ReactorConfig {
        idle_timeout: Duration::from_millis(50),
        ..quick_config()
    };
    let reactor = Reactor::start(cfg, ReactorMetrics::detached());
    let handle = reactor.handle();
    let addr = handle.listen(Arc::new(Echo)).unwrap();

    let frame = Frame::Hello {
        node_id: 3,
        num_pages: 3,
    };
    handle.request(addr, &frame).unwrap();
    std::thread::sleep(Duration::from_millis(250));
    // The first connection idled out on both sides; the next request
    // must dial a fresh one without the caller noticing.
    let (reply, _, _) = handle.request(addr, &frame).unwrap();
    assert_eq!(
        reply,
        Frame::Hello {
            node_id: 1003,
            num_pages: 3
        }
    );
}

#[test]
fn submissions_after_shutdown_resolve_closed() {
    let reactor = Reactor::start(quick_config(), ReactorMetrics::detached());
    let handle = reactor.handle();
    let addr = handle.listen(Arc::new(Echo)).unwrap();
    drop(reactor);

    let err = handle
        .request(
            addr,
            &Frame::Hello {
                node_id: 1,
                num_pages: 1,
            },
        )
        .unwrap_err();
    assert_eq!(err, ReactorError::Closed);
}

#[test]
fn concurrent_submitters_share_one_reactor() {
    let reactor = Reactor::start(quick_config(), ReactorMetrics::detached());
    let handle = reactor.handle();
    let addr = handle.listen(Arc::new(Echo)).unwrap();

    std::thread::scope(|scope| {
        for t in 0..8u64 {
            let handle = handle.clone();
            scope.spawn(move || {
                for i in 0..50u64 {
                    let frame = Frame::Hello {
                        node_id: t * 100 + i,
                        num_pages: t,
                    };
                    let (reply, _, _) = handle.request(addr, &frame).unwrap();
                    assert_eq!(
                        reply,
                        Frame::Hello {
                            node_id: t * 100 + i + 1000,
                            num_pages: t
                        }
                    );
                }
            });
        }
    });
}
