//! Backing-agnostic read access to a directed graph.
//!
//! [`GraphSource`] abstracts *where* a graph's adjacency lives: fully in
//! memory ([`CsrGraph`]) or on disk in demand-paged segments
//! (`jxp-segstore`'s `SegmentedGraph`). Everything downstream that only
//! *reads* a graph — fragment extraction, pull-based power iteration —
//! is generic over this trait, which is what lets per-peer
//! extended-graph PageRank run out-of-core.
//!
//! The trait's iteration methods take a closure instead of returning an
//! iterator so that implementations backed by a segment cache can hand
//! out adjacency from a guarded, transient buffer without lifetime
//! gymnastics, while `CsrGraph` keeps a plain inlined slice walk.
//!
//! # Ordering contract
//!
//! Implementations **must** visit successors and predecessors in
//! strictly ascending id order with no duplicates. The repo-wide
//! bit-identical determinism guarantee (same scores at 1/2/8 threads,
//! in memory or out of core) rests on every backend producing the same
//! adjacency in the same order, so the same float operations run in the
//! same sequence.

use crate::csr::CsrGraph;
use crate::id::PageId;

/// Read-only access to a directed graph with dense ids `0..num_nodes`.
///
/// `Sync` is a supertrait because graph reads happen concurrently from
/// the chunked power-iteration workers.
pub trait GraphSource: Sync {
    /// Number of nodes; ids are dense `0..num_nodes`.
    fn num_nodes(&self) -> usize;

    /// Number of directed edges.
    fn num_edges(&self) -> usize;

    /// Out-degree of `v`.
    fn out_degree(&self, v: PageId) -> usize;

    /// Visit the successors of `v` in ascending id order.
    fn for_each_successor<F: FnMut(PageId)>(&self, v: PageId, f: F);

    /// Visit the predecessors of `v` in ascending id order.
    fn for_each_predecessor<F: FnMut(PageId)>(&self, v: PageId, f: F);

    /// Successor list of `v`, ascending (allocating convenience).
    ///
    /// Note: `CsrGraph` has an inherent `successors` returning a
    /// borrowed iterator; on a concrete `CsrGraph` that method shadows
    /// this one, which only differs in allocating.
    fn successors(&self, v: PageId) -> Vec<PageId> {
        let mut out = Vec::with_capacity(self.out_degree(v));
        self.for_each_successor(v, |u| out.push(u));
        out
    }

    /// Nodes with zero out-degree, in ascending id order — the exact
    /// sequence `CsrGraph::dangling_nodes` yields, so dangling-mass
    /// accumulation sums in the same order on every backend.
    fn dangling(&self) -> Vec<PageId> {
        (0..self.num_nodes())
            .map(PageId::from_index)
            .filter(|&v| self.out_degree(v) == 0)
            .collect()
    }
}

impl GraphSource for CsrGraph {
    #[inline]
    fn num_nodes(&self) -> usize {
        CsrGraph::num_nodes(self)
    }

    #[inline]
    fn num_edges(&self) -> usize {
        CsrGraph::num_edges(self)
    }

    #[inline]
    fn out_degree(&self, v: PageId) -> usize {
        CsrGraph::out_degree(self, v)
    }

    #[inline]
    fn for_each_successor<F: FnMut(PageId)>(&self, v: PageId, mut f: F) {
        for u in CsrGraph::successors(self, v) {
            f(u);
        }
    }

    #[inline]
    fn for_each_predecessor<F: FnMut(PageId)>(&self, v: PageId, mut f: F) {
        for u in CsrGraph::predecessors(self, v) {
            f(u);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn diamond() -> CsrGraph {
        let mut b = GraphBuilder::new();
        for (s, d) in [(0, 1), (0, 2), (1, 3), (2, 3)] {
            b.add_edge(PageId(s), PageId(d));
        }
        b.build()
    }

    // A generic consumer, so the assertions below go through the trait
    // (not CsrGraph's shadowing inherent methods).
    fn collect_via_source<G: GraphSource>(g: &G) -> (usize, usize, Vec<Vec<u32>>, Vec<Vec<u32>>) {
        let mut succ = Vec::new();
        let mut pred = Vec::new();
        for v in 0..g.num_nodes() {
            let mut s = Vec::new();
            g.for_each_successor(PageId::from_index(v), |u| s.push(u.0));
            succ.push(s);
            let mut p = Vec::new();
            g.for_each_predecessor(PageId::from_index(v), |u| p.push(u.0));
            pred.push(p);
        }
        (g.num_nodes(), g.num_edges(), succ, pred)
    }

    #[test]
    fn csr_impl_matches_inherent_accessors() {
        let g = diamond();
        let (n, m, succ, pred) = collect_via_source(&g);
        assert_eq!(n, 4);
        assert_eq!(m, 4);
        for v in 0..n {
            let inherent: Vec<u32> = g.successors(PageId(v as u32)).map(|p| p.0).collect();
            assert_eq!(succ[v], inherent);
            let inherent: Vec<u32> = g.predecessors(PageId(v as u32)).map(|p| p.0).collect();
            assert_eq!(pred[v], inherent);
            assert_eq!(
                GraphSource::out_degree(&g, PageId(v as u32)),
                g.out_degree(PageId(v as u32))
            );
        }
    }

    #[test]
    fn provided_successors_allocates_sorted_list() {
        let g = diamond();
        assert_eq!(
            GraphSource::successors(&g, PageId(0)),
            vec![PageId(1), PageId(2)]
        );
        assert!(GraphSource::successors(&g, PageId(3)).is_empty());
    }

    #[test]
    fn provided_dangling_matches_dangling_nodes() {
        let g = diamond();
        assert_eq!(
            GraphSource::dangling(&g),
            g.dangling_nodes().collect::<Vec<_>>()
        );
    }
}
