//! A fast, non-cryptographic hasher for small integer keys.
//!
//! The JXP hot paths hash `PageId`s millions of times (world-node lookups,
//! score lists, overlap computations). The default SipHash in `std` is
//! robust against hash-flooding but needlessly slow for trusted integer
//! keys. This module provides an in-repo implementation of the well-known
//! "Fx" hash (the multiply-and-rotate hash used by rustc), avoiding an
//! extra external dependency.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant for 64-bit Fx hashing (from rustc's FxHasher).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx hasher: multiply-and-rotate over machine words.
///
/// Not collision-resistant against adversarial inputs; only use for
/// internal, trusted keys (page ids, peer ids, hashed terms).
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using the fast Fx hasher.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using the fast Fx hasher.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PageId;

    #[test]
    fn map_basic_operations() {
        let mut m: FxHashMap<PageId, f64> = FxHashMap::default();
        m.insert(PageId(1), 0.5);
        m.insert(PageId(2), 0.25);
        assert_eq!(m.get(&PageId(1)), Some(&0.5));
        assert_eq!(m.len(), 2);
        m.remove(&PageId(1));
        assert!(!m.contains_key(&PageId(1)));
    }

    #[test]
    fn set_dedup() {
        let mut s: FxHashSet<u32> = FxHashSet::default();
        for i in 0..100 {
            s.insert(i % 10);
        }
        assert_eq!(s.len(), 10);
    }

    #[test]
    fn hasher_is_deterministic() {
        let hash = |x: u64| {
            let mut h = FxHasher::default();
            h.write_u64(x);
            h.finish()
        };
        assert_eq!(hash(12345), hash(12345));
        assert_ne!(hash(12345), hash(12346));
    }

    #[test]
    fn write_bytes_handles_remainders() {
        let hash = |b: &[u8]| {
            let mut h = FxHasher::default();
            h.write(b);
            h.finish()
        };
        // Different lengths with shared prefixes should still disperse.
        assert_ne!(hash(b"abcdefgh"), hash(b"abcdefg"));
        assert_ne!(hash(b"a"), hash(b"b"));
        assert_eq!(hash(b"hello world"), hash(b"hello world"));
    }
}
