//! Peer-local graph fragments.
//!
//! In JXP every peer holds a *fragment* of the global Web graph. A fragment
//! knows, for each local page, **all** of that page's out-links (a crawler
//! always sees the links embedded in a fetched page), including links whose
//! targets were never crawled. Targets outside the fragment are exactly the
//! links that the JXP world node absorbs.
//!
//! [`Subgraph`] therefore stores, per local page, the *full* successor list
//! in global ids, plus the set of local pages, and offers the
//! local-vs-external split that `jxp-core` needs.

use crate::csr::CsrGraph;
use crate::hash::{FxHashMap, FxHashSet};
use crate::id::PageId;
use crate::source::GraphSource;

/// A peer's local fragment of the global graph.
///
/// Pages are identified by their **global** [`PageId`]s. For every local
/// page the fragment records the complete out-link list of that page in the
/// global graph (a crawler sees all links of a fetched page), so
/// `out_degree` here equals the *true global* out-degree — the quantity
/// `out(p)` in the paper's equations.
#[derive(Debug, Clone, Default)]
pub struct Subgraph {
    /// Local pages in sorted order.
    pages: Vec<PageId>,
    /// Position of each local page in `pages`.
    index: FxHashMap<PageId, u32>,
    /// `succ_off[i]..succ_off[i+1]` indexes `succ` with the successors of
    /// `pages[i]` (global ids, sorted; may include non-local targets).
    succ_off: Vec<u32>,
    succ: Vec<PageId>,
}

impl Subgraph {
    /// Extract the fragment of `global` induced by `pages` (keeping all
    /// out-links, including those leaving the fragment).
    pub fn from_pages(global: &CsrGraph, pages: impl IntoIterator<Item = PageId>) -> Self {
        Subgraph::from_source(global, pages)
    }

    /// [`from_pages`](Subgraph::from_pages), but over any
    /// [`GraphSource`] — in particular a disk-backed `SegmentedGraph`,
    /// so a peer's fragment can be cut out of a graph that never fits
    /// in memory. Successor lists come out identical to the in-memory
    /// path (the trait's ordering contract), so everything built on the
    /// fragment stays bit-identical.
    pub fn from_source<G: GraphSource + ?Sized>(
        global: &G,
        pages: impl IntoIterator<Item = PageId>,
    ) -> Self {
        let mut pages: Vec<PageId> = pages.into_iter().collect();
        pages.sort_unstable();
        pages.dedup();
        let mut index = FxHashMap::default();
        for (i, &p) in pages.iter().enumerate() {
            index.insert(p, i as u32);
        }
        let mut succ_off = Vec::with_capacity(pages.len() + 1);
        succ_off.push(0u32);
        let mut succ = Vec::new();
        for &p in &pages {
            global.for_each_successor(p, |u| succ.push(u));
            succ_off.push(succ.len() as u32);
        }
        Subgraph {
            pages,
            index,
            succ_off,
            succ,
        }
    }

    /// Build directly from explicit adjacency: an iterator of
    /// `(page, successors)` pairs. Successor lists may reference non-local
    /// pages and will be sorted and deduplicated.
    pub fn from_adjacency(adj: impl IntoIterator<Item = (PageId, Vec<PageId>)>) -> Self {
        let mut entries: Vec<(PageId, Vec<PageId>)> = adj.into_iter().collect();
        entries.sort_unstable_by_key(|e| e.0);
        entries.dedup_by(|a, b| {
            if a.0 == b.0 {
                b.1.append(&mut a.1);
                true
            } else {
                false
            }
        });
        let mut pages = Vec::with_capacity(entries.len());
        let mut index = FxHashMap::default();
        let mut succ_off = vec![0u32];
        let mut succ = Vec::new();
        for (i, (p, mut s)) in entries.into_iter().enumerate() {
            s.sort_unstable();
            s.dedup();
            pages.push(p);
            index.insert(p, i as u32);
            succ.extend(s);
            succ_off.push(succ.len() as u32);
        }
        Subgraph {
            pages,
            index,
            succ_off,
            succ,
        }
    }

    /// Number of local pages (the paper's `n`).
    #[inline]
    pub fn num_pages(&self) -> usize {
        self.pages.len()
    }

    /// The local pages, sorted by global id.
    #[inline]
    pub fn pages(&self) -> &[PageId] {
        &self.pages
    }

    /// Whether `p` is a local page of this fragment.
    #[inline]
    pub fn contains(&self, p: PageId) -> bool {
        self.index.contains_key(&p)
    }

    /// The dense local index of `p` (0..n), if local.
    #[inline]
    pub fn local_index(&self, p: PageId) -> Option<usize> {
        self.index.get(&p).map(|&i| i as usize)
    }

    /// The page at dense local index `i`.
    #[inline]
    pub fn page_at(&self, i: usize) -> PageId {
        self.pages[i]
    }

    /// Full successor list (global ids) of the local page with dense index
    /// `i` — includes targets outside the fragment.
    #[inline]
    pub fn successors_at(&self, i: usize) -> &[PageId] {
        &self.succ[self.succ_off[i] as usize..self.succ_off[i + 1] as usize]
    }

    /// Full successor list of a local page, by global id.
    pub fn successors(&self, p: PageId) -> Option<&[PageId]> {
        self.local_index(p).map(|i| self.successors_at(i))
    }

    /// The true global out-degree of the local page at dense index `i`.
    #[inline]
    pub fn out_degree_at(&self, i: usize) -> usize {
        (self.succ_off[i + 1] - self.succ_off[i]) as usize
    }

    /// Total number of recorded out-links (local + leaving).
    pub fn num_links(&self) -> usize {
        self.succ.len()
    }

    /// Set of all successors of all local pages (the paper's
    /// `successors(A)` synopsis input), deduplicated. Returned as a
    /// `BTreeSet` so consumers iterate in a deterministic (sorted)
    /// order regardless of insertion history.
    pub fn successor_set(&self) -> std::collections::BTreeSet<PageId> {
        self.succ.iter().copied().collect()
    }

    /// Iterate over `(src, dst)` for every recorded out-link.
    pub fn links(&self) -> impl Iterator<Item = (PageId, PageId)> + '_ {
        (0..self.num_pages()).flat_map(move |i| {
            let src = self.pages[i];
            self.successors_at(i).iter().map(move |&d| (src, d))
        })
    }

    /// Merge two fragments into their union (used by the *full* merging
    /// baseline, Algorithm 2): pages `V_M = V_A ∪ V_B`, links
    /// `E_M = E_A ∪ E_B`.
    pub fn union(&self, other: &Subgraph) -> Subgraph {
        let mut adj: FxHashMap<PageId, Vec<PageId>> = FxHashMap::default();
        for (i, &p) in self.pages.iter().enumerate() {
            adj.entry(p).or_default().extend(self.successors_at(i));
        }
        for (i, &p) in other.pages.iter().enumerate() {
            adj.entry(p).or_default().extend(other.successors_at(i));
        }
        Subgraph::from_adjacency(adj)
    }

    /// Local pages of `self` that have an in-link from some local page of
    /// `other` (what the containment synopsis estimates exactly).
    pub fn in_link_sources_from(&self, other: &Subgraph) -> usize {
        let mut hit: FxHashSet<PageId> = FxHashSet::default();
        for (_, dst) in other.links() {
            if self.contains(dst) {
                hit.insert(dst);
            }
        }
        hit.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn global() -> CsrGraph {
        // 0→1, 1→2, 2→0, 2→3, 3→4, 4→0
        let mut b = GraphBuilder::new();
        for (s, d) in [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 0)] {
            b.add_edge(PageId(s), PageId(d));
        }
        b.build()
    }

    #[test]
    fn from_pages_keeps_external_links() {
        let g = global();
        let f = Subgraph::from_pages(&g, [PageId(1), PageId(2)]);
        assert_eq!(f.num_pages(), 2);
        // Page 2 has links to 0 (external) and 3 (external): both kept.
        assert_eq!(f.successors(PageId(2)).unwrap(), &[PageId(0), PageId(3)]);
        // True out-degree preserved.
        assert_eq!(f.out_degree_at(f.local_index(PageId(2)).unwrap()), 2);
    }

    #[test]
    fn contains_and_local_index() {
        let g = global();
        let f = Subgraph::from_pages(&g, [PageId(4), PageId(0)]);
        assert!(f.contains(PageId(0)));
        assert!(!f.contains(PageId(2)));
        // Sorted: page 0 has local index 0, page 4 index 1.
        assert_eq!(f.local_index(PageId(0)), Some(0));
        assert_eq!(f.local_index(PageId(4)), Some(1));
        assert_eq!(f.page_at(1), PageId(4));
    }

    #[test]
    fn duplicate_pages_are_deduplicated() {
        let g = global();
        let f = Subgraph::from_pages(&g, [PageId(1), PageId(1), PageId(1)]);
        assert_eq!(f.num_pages(), 1);
    }

    #[test]
    fn union_merges_overlapping_fragments() {
        let g = global();
        let a = Subgraph::from_pages(&g, [PageId(0), PageId(1)]);
        let b = Subgraph::from_pages(&g, [PageId(1), PageId(2)]);
        let u = a.union(&b);
        assert_eq!(u.pages(), &[PageId(0), PageId(1), PageId(2)]);
        assert_eq!(u.successors(PageId(1)).unwrap(), &[PageId(2)]);
        // Union must not duplicate page 1's links.
        assert_eq!(u.num_links(), 4); // 0→1, 1→2, 2→0, 2→3
    }

    #[test]
    fn successor_set_dedups() {
        let g = global();
        let f = Subgraph::from_pages(&g, [PageId(2), PageId(4)]);
        let s = f.successor_set();
        // succ(2) = {0,3}, succ(4) = {0} → {0,3}
        assert_eq!(s.len(), 2);
        assert!(s.contains(&PageId(0)) && s.contains(&PageId(3)));
    }

    #[test]
    fn in_link_sources_counts_targets_once() {
        let g = global();
        let a = Subgraph::from_pages(&g, [PageId(0)]);
        let b = Subgraph::from_pages(&g, [PageId(2), PageId(4)]);
        // Links from B into A's pages: 2→0 and 4→0, same target.
        assert_eq!(a.in_link_sources_from(&b), 1);
    }

    #[test]
    fn from_adjacency_merges_duplicate_entries() {
        let f = Subgraph::from_adjacency([
            (PageId(5), vec![PageId(1), PageId(2)]),
            (PageId(5), vec![PageId(2), PageId(3)]),
        ]);
        assert_eq!(f.num_pages(), 1);
        assert_eq!(
            f.successors(PageId(5)).unwrap(),
            &[PageId(1), PageId(2), PageId(3)]
        );
    }
}
