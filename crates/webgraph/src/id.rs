//! Node identifiers.
//!
//! The global Web graph in the JXP setting has a single global id space; a
//! peer's local fragment refers to pages by their **global** [`PageId`] so
//! that fragments of different peers can be compared, merged and attached to
//! world nodes without any translation table. `u32` ids keep the hot
//! PageRank loops cache-friendly (the paper's graphs have ≈10⁵ nodes; real
//! Web-scale deployments would move to `u64`, which is a one-line change
//! here).

use std::fmt;

/// Identifier of a page (node) in the **global** Web graph.
///
/// A newtype over `u32` so that page ids, peer ids and array indices cannot
/// be confused with one another at compile time.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u32);

impl PageId {
    /// The page id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct from a `usize` index.
    ///
    /// # Panics
    /// Panics if `i` does not fit in a `u32`.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        PageId(u32::try_from(i).expect("page id exceeds u32 range"))
    }
}

impl fmt::Debug for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for PageId {
    fn from(v: u32) -> Self {
        PageId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trip() {
        let id = PageId::from_index(42);
        assert_eq!(id, PageId(42));
        assert_eq!(id.index(), 42);
    }

    #[test]
    fn ordering_follows_numeric_value() {
        assert!(PageId(1) < PageId(2));
        assert!(PageId(100) > PageId(99));
    }

    #[test]
    fn debug_and_display() {
        assert_eq!(format!("{:?}", PageId(7)), "p7");
        assert_eq!(format!("{}", PageId(7)), "7");
    }

    #[test]
    #[should_panic(expected = "page id exceeds u32 range")]
    fn from_index_overflow_panics() {
        let _ = PageId::from_index(u32::MAX as usize + 1);
    }
}
