//! Immutable compressed-sparse-row graph.

use crate::id::PageId;

/// An immutable directed graph in compressed-sparse-row form, storing both
/// forward (successor) and reverse (predecessor) adjacency.
///
/// Both directions are needed throughout the reproduction: PageRank's
/// pull-style formulation iterates over predecessors, while the JXP world
/// node and the pre-meetings synopses reason about successors.
///
/// Node ids are dense `0..num_nodes`. Adjacency lists are sorted, enabling
/// `O(log d)` [`has_edge`](CsrGraph::has_edge) and linear-time merges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrGraph {
    /// `fwd_off[v]..fwd_off[v+1]` indexes `fwd_adj` with the successors of `v`.
    fwd_off: Vec<u32>,
    fwd_adj: Vec<u32>,
    /// `rev_off[v]..rev_off[v+1]` indexes `rev_adj` with the predecessors of `v`.
    rev_off: Vec<u32>,
    rev_adj: Vec<u32>,
}

impl CsrGraph {
    /// Build from an edge list that is already sorted by `(src, dst)` and
    /// deduplicated. `n` is the number of nodes.
    ///
    /// # Panics
    /// Panics (debug assertions) if the input is not sorted/deduplicated or
    /// references a node `>= n`.
    pub(crate) fn from_sorted_dedup_edges(n: usize, edges: &[(PageId, PageId)]) -> Self {
        debug_assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "edges not sorted+dedup"
        );
        let m = edges.len();
        let mut fwd_off = vec![0u32; n + 1];
        let mut rev_off = vec![0u32; n + 1];
        for &(s, d) in edges {
            debug_assert!(s.index() < n && d.index() < n);
            fwd_off[s.index() + 1] += 1;
            rev_off[d.index() + 1] += 1;
        }
        for i in 0..n {
            fwd_off[i + 1] += fwd_off[i];
            rev_off[i + 1] += rev_off[i];
        }
        let mut fwd_adj = vec![0u32; m];
        let mut rev_adj = vec![0u32; m];
        // Forward lists come out sorted for free because the edge list is
        // sorted by (src, dst).
        let mut cursor = fwd_off.clone();
        for &(s, d) in edges {
            let c = &mut cursor[s.index()];
            fwd_adj[*c as usize] = d.0;
            *c += 1;
        }
        let mut rcursor = rev_off.clone();
        for &(s, d) in edges {
            let c = &mut rcursor[d.index()];
            rev_adj[*c as usize] = s.0;
            *c += 1;
        }
        // Reverse lists are filled in src order per destination, i.e. sorted.
        debug_assert!((0..n).all(|v| {
            let r = rev_off[v] as usize..rev_off[v + 1] as usize;
            rev_adj[r].windows(2).all(|w| w[0] < w[1])
        }));
        CsrGraph {
            fwd_off,
            fwd_adj,
            rev_off,
            rev_adj,
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.fwd_off.len() - 1
    }

    /// Number of directed edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.fwd_adj.len()
    }

    /// Successors of `v` (sorted).
    #[inline]
    pub fn successors(&self, v: PageId) -> impl Iterator<Item = PageId> + '_ {
        let r = self.fwd_off[v.index()] as usize..self.fwd_off[v.index() + 1] as usize;
        self.fwd_adj[r].iter().map(|&u| PageId(u))
    }

    /// Predecessors of `v` (sorted).
    #[inline]
    pub fn predecessors(&self, v: PageId) -> impl Iterator<Item = PageId> + '_ {
        let r = self.rev_off[v.index()] as usize..self.rev_off[v.index() + 1] as usize;
        self.rev_adj[r].iter().map(|&u| PageId(u))
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: PageId) -> usize {
        (self.fwd_off[v.index() + 1] - self.fwd_off[v.index()]) as usize
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: PageId) -> usize {
        (self.rev_off[v.index() + 1] - self.rev_off[v.index()]) as usize
    }

    /// The `k`-th successor of `v` (successors are sorted by id).
    ///
    /// # Panics
    /// Panics if `k >= out_degree(v)`.
    #[inline]
    pub fn successor_at(&self, v: PageId, k: usize) -> PageId {
        let base = self.fwd_off[v.index()] as usize;
        debug_assert!(k < self.out_degree(v));
        PageId(self.fwd_adj[base + k])
    }

    /// Whether the edge `src → dst` exists (binary search, `O(log d)`).
    pub fn has_edge(&self, src: PageId, dst: PageId) -> bool {
        let r = self.fwd_off[src.index()] as usize..self.fwd_off[src.index() + 1] as usize;
        self.fwd_adj[r].binary_search(&dst.0).is_ok()
    }

    /// All nodes, in id order.
    pub fn nodes(&self) -> impl Iterator<Item = PageId> + '_ {
        (0..self.num_nodes() as u32).map(PageId)
    }

    /// All edges, in `(src, dst)` order.
    pub fn edges(&self) -> impl Iterator<Item = (PageId, PageId)> + '_ {
        self.nodes()
            .flat_map(move |v| self.successors(v).map(move |u| (v, u)))
    }

    /// Nodes with zero out-degree ("dangling" pages).
    pub fn dangling_nodes(&self) -> impl Iterator<Item = PageId> + '_ {
        self.nodes().filter(move |&v| self.out_degree(v) == 0)
    }

    /// Count of dangling (zero out-degree) nodes.
    pub fn num_dangling(&self) -> usize {
        self.dangling_nodes().count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn diamond() -> CsrGraph {
        // 0 → 1, 0 → 2, 1 → 3, 2 → 3
        let mut b = GraphBuilder::new();
        for (s, d) in [(0, 1), (0, 2), (1, 3), (2, 3)] {
            b.add_edge(PageId(s), PageId(d));
        }
        b.build()
    }

    #[test]
    fn degrees() {
        let g = diamond();
        assert_eq!(g.out_degree(PageId(0)), 2);
        assert_eq!(g.in_degree(PageId(0)), 0);
        assert_eq!(g.out_degree(PageId(3)), 0);
        assert_eq!(g.in_degree(PageId(3)), 2);
    }

    #[test]
    fn successors_and_predecessors_sorted() {
        let g = diamond();
        let succ: Vec<_> = g.successors(PageId(0)).collect();
        assert_eq!(succ, vec![PageId(1), PageId(2)]);
        let pred: Vec<_> = g.predecessors(PageId(3)).collect();
        assert_eq!(pred, vec![PageId(1), PageId(2)]);
    }

    #[test]
    fn has_edge() {
        let g = diamond();
        assert!(g.has_edge(PageId(0), PageId(1)));
        assert!(!g.has_edge(PageId(1), PageId(0)));
        assert!(!g.has_edge(PageId(0), PageId(3)));
    }

    #[test]
    fn edges_round_trip() {
        let g = diamond();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(
            edges,
            vec![
                (PageId(0), PageId(1)),
                (PageId(0), PageId(2)),
                (PageId(1), PageId(3)),
                (PageId(2), PageId(3)),
            ]
        );
    }

    #[test]
    fn dangling_nodes() {
        let g = diamond();
        let d: Vec<_> = g.dangling_nodes().collect();
        assert_eq!(d, vec![PageId(3)]);
        assert_eq!(g.num_dangling(), 1);
    }

    #[test]
    fn successor_at_indexes_sorted_adjacency() {
        let g = diamond();
        assert_eq!(g.successor_at(PageId(0), 0), PageId(1));
        assert_eq!(g.successor_at(PageId(0), 1), PageId(2));
        let collected: Vec<PageId> = (0..g.out_degree(PageId(0)))
            .map(|k| g.successor_at(PageId(0), k))
            .collect();
        assert_eq!(collected, g.successors(PageId(0)).collect::<Vec<_>>());
    }

    #[test]
    fn edge_count_matches_degree_sums() {
        let g = diamond();
        let out_sum: usize = g.nodes().map(|v| g.out_degree(v)).sum();
        let in_sum: usize = g.nodes().map(|v| g.in_degree(v)).sum();
        assert_eq!(out_sum, g.num_edges());
        assert_eq!(in_sum, g.num_edges());
    }
}
