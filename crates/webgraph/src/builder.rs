//! Mutable graph construction.

use crate::csr::CsrGraph;
use crate::id::PageId;

/// An edge-list accumulator that produces an immutable [`CsrGraph`].
///
/// Duplicate edges are removed at [`build`](GraphBuilder::build) time;
/// self-loops are kept (the paper's world node itself carries a self-loop,
/// and real Web graphs contain self-links).
///
/// The number of nodes of the built graph is `max(max referenced id + 1,
/// reserved node count)` — isolated trailing nodes can be forced into the
/// graph with [`ensure_node`](GraphBuilder::ensure_node).
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    edges: Vec<(PageId, PageId)>,
    min_nodes: usize,
}

impl GraphBuilder {
    /// Create an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an empty builder with pre-allocated capacity for `edges` edges.
    pub fn with_capacity(edges: usize) -> Self {
        GraphBuilder {
            edges: Vec::with_capacity(edges),
            min_nodes: 0,
        }
    }

    /// Add a directed edge `src → dst`.
    pub fn add_edge(&mut self, src: PageId, dst: PageId) {
        self.edges.push((src, dst));
    }

    /// Guarantee that `id` exists as a node in the built graph even if no
    /// edge references it.
    pub fn ensure_node(&mut self, id: PageId) {
        self.min_nodes = self.min_nodes.max(id.index() + 1);
    }

    /// Guarantee the graph has at least `n` nodes.
    pub fn ensure_nodes(&mut self, n: usize) {
        self.min_nodes = self.min_nodes.max(n);
    }

    /// Number of edges currently queued (before deduplication).
    pub fn num_queued_edges(&self) -> usize {
        self.edges.len()
    }

    /// Consume the builder and produce a deduplicated, sorted [`CsrGraph`].
    pub fn build(mut self) -> CsrGraph {
        self.edges.sort_unstable();
        self.edges.dedup();
        let n = self
            .edges
            .iter()
            .map(|&(s, d)| s.index().max(d.index()) + 1)
            .max()
            .unwrap_or(0)
            .max(self.min_nodes);
        CsrGraph::from_sorted_dedup_edges(n, &self.edges)
    }
}

impl FromIterator<(PageId, PageId)> for GraphBuilder {
    fn from_iter<T: IntoIterator<Item = (PageId, PageId)>>(iter: T) -> Self {
        GraphBuilder {
            edges: iter.into_iter().collect(),
            min_nodes: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_builder_builds_empty_graph() {
        let g = GraphBuilder::new().build();
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn duplicate_edges_are_removed() {
        let mut b = GraphBuilder::new();
        b.add_edge(PageId(0), PageId(1));
        b.add_edge(PageId(0), PageId(1));
        b.add_edge(PageId(0), PageId(1));
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.out_degree(PageId(0)), 1);
    }

    #[test]
    fn self_loops_are_kept() {
        let mut b = GraphBuilder::new();
        b.add_edge(PageId(3), PageId(3));
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.out_degree(PageId(3)), 1);
        assert_eq!(g.in_degree(PageId(3)), 1);
    }

    #[test]
    fn ensure_node_creates_isolated_nodes() {
        let mut b = GraphBuilder::new();
        b.add_edge(PageId(0), PageId(1));
        b.ensure_node(PageId(9));
        let g = b.build();
        assert_eq!(g.num_nodes(), 10);
        assert_eq!(g.out_degree(PageId(9)), 0);
    }

    #[test]
    fn node_count_from_max_referenced_id() {
        let mut b = GraphBuilder::new();
        b.add_edge(PageId(2), PageId(7));
        let g = b.build();
        assert_eq!(g.num_nodes(), 8);
    }

    #[test]
    fn from_iterator() {
        let g: CsrGraph = [(PageId(0), PageId(1)), (PageId(1), PageId(0))]
            .into_iter()
            .collect::<GraphBuilder>()
            .build();
        assert_eq!(g.num_edges(), 2);
    }
}
