//! Structural graph analysis.
//!
//! Used to validate the synthetic datasets against the paper's Figure 3
//! (in-degree distributions close to a power law) and to check that the
//! generated graphs are connected enough for PageRank to be meaningful
//! (§6.1: "We checked the degree of connectivity to assure that the PR
//! computation was meaningful in these datasets").

use crate::csr::CsrGraph;
use crate::id::PageId;

/// A degree histogram: `counts[d]` = number of nodes with degree `d`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegreeHistogram {
    counts: Vec<usize>,
}

impl DegreeHistogram {
    /// In-degree histogram of `g`.
    pub fn indegree(g: &CsrGraph) -> Self {
        Self::from_degrees(g.nodes().map(|v| g.in_degree(v)))
    }

    /// Out-degree histogram of `g`.
    pub fn outdegree(g: &CsrGraph) -> Self {
        Self::from_degrees(g.nodes().map(|v| g.out_degree(v)))
    }

    fn from_degrees(degrees: impl Iterator<Item = usize>) -> Self {
        let mut counts = Vec::new();
        for d in degrees {
            if d >= counts.len() {
                counts.resize(d + 1, 0);
            }
            counts[d] += 1;
        }
        DegreeHistogram { counts }
    }

    /// Number of nodes with degree exactly `d`.
    pub fn count(&self, d: usize) -> usize {
        self.counts.get(d).copied().unwrap_or(0)
    }

    /// Largest degree present.
    pub fn max_degree(&self) -> usize {
        self.counts.iter().rposition(|&c| c > 0).unwrap_or(0)
    }

    /// `(degree, count)` pairs for all degrees with non-zero count.
    pub fn nonzero(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(d, &c)| (d, c))
    }

    /// Count-weighted least-squares slope of `log10(count)` against
    /// `log10(degree)` over degrees ≥ 1 — the exponent of a power-law fit
    /// `count ∝ degree^slope`.
    ///
    /// Web-like in-degree distributions fit with slope around −2 (Fig. 3 in
    /// the paper shows a straight descending line in log-log scale). The
    /// fit weights each point by its node count so the sparse singleton
    /// tail (one page at each of many huge degrees) does not dominate the
    /// regression. Returns `None` if fewer than two non-zero degrees ≥ 1
    /// exist.
    pub fn log_log_slope(&self) -> Option<f64> {
        let pts: Vec<(f64, f64, f64)> = self
            .nonzero()
            .filter(|&(d, _)| d >= 1)
            .map(|(d, c)| ((d as f64).log10(), (c as f64).log10(), c as f64))
            .collect();
        weighted_regression_slope(&pts)
    }
}

/// Slope of the weighted least-squares line through `(x, y, w)` points.
/// `None` if the (weighted) x values do not vary.
pub fn weighted_regression_slope(pts: &[(f64, f64, f64)]) -> Option<f64> {
    if pts.len() < 2 {
        return None;
    }
    let sw: f64 = pts.iter().map(|p| p.2).sum();
    if sw <= 0.0 {
        return None;
    }
    let sx: f64 = pts.iter().map(|p| p.2 * p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.2 * p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.2 * p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.2 * p.0 * p.1).sum();
    let denom = sw * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    Some((sw * sxy - sx * sy) / denom)
}

/// Slope of the least-squares line through `pts` (x, y). `None` if the x
/// values do not vary (fewer than 2 distinct points).
pub fn linear_regression_slope(pts: &[(f64, f64)]) -> Option<f64> {
    if pts.len() < 2 {
        return None;
    }
    let n = pts.len() as f64;
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    Some((n * sxy - sx * sy) / denom)
}

/// Strongly connected components via Tarjan's algorithm (iterative —
/// Web-scale graphs would overflow the call stack with recursion).
///
/// Returns, for every node, the id of its component; component ids are
/// `0..num_components` in reverse topological discovery order.
pub fn strongly_connected_components(g: &CsrGraph) -> Vec<u32> {
    let n = g.num_nodes();
    const UNVISITED: u32 = u32::MAX;
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut comp = vec![UNVISITED; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index = 0u32;
    let mut num_comp = 0u32;

    // Explicit DFS frames: (node, iterator position over successors).
    let mut frames: Vec<(u32, usize)> = Vec::new();

    for root in 0..n as u32 {
        if index[root as usize] != UNVISITED {
            continue;
        }
        frames.push((root, 0));
        index[root as usize] = next_index;
        lowlink[root as usize] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root as usize] = true;

        while let Some(&mut (v, ref mut pos)) = frames.last_mut() {
            if *pos < g.out_degree(PageId(v)) {
                let w = g.successor_at(PageId(v), *pos).0;
                *pos += 1;
                if index[w as usize] == UNVISITED {
                    index[w as usize] = next_index;
                    lowlink[w as usize] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w as usize] = true;
                    frames.push((w, 0));
                } else if on_stack[w as usize] {
                    lowlink[v as usize] = lowlink[v as usize].min(index[w as usize]);
                }
            } else {
                frames.pop();
                if let Some(&mut (parent, _)) = frames.last_mut() {
                    lowlink[parent as usize] = lowlink[parent as usize].min(lowlink[v as usize]);
                }
                if lowlink[v as usize] == index[v as usize] {
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w as usize] = false;
                        comp[w as usize] = num_comp;
                        if w == v {
                            break;
                        }
                    }
                    num_comp += 1;
                }
            }
        }
    }
    comp
}

/// Number of strongly connected components.
pub fn num_sccs(g: &CsrGraph) -> usize {
    let comp = strongly_connected_components(g);
    comp.iter().map(|&c| c as usize + 1).max().unwrap_or(0)
}

/// Size of the largest strongly connected component.
pub fn largest_scc_size(g: &CsrGraph) -> usize {
    let comp = strongly_connected_components(g);
    let k = comp.iter().map(|&c| c as usize + 1).max().unwrap_or(0);
    let mut sizes = vec![0usize; k];
    for &c in &comp {
        sizes[c as usize] += 1;
    }
    sizes.into_iter().max().unwrap_or(0)
}

/// A one-shot structural profile of a graph, as printed by the dataset
/// tooling ("We checked the degree of connectivity to assure that the PR
/// computation was meaningful", §6.1).
#[derive(Debug, Clone, PartialEq)]
pub struct GraphSummary {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of edges.
    pub edges: usize,
    /// Nodes with zero out-degree.
    pub dangling: usize,
    /// Largest in-degree.
    pub max_in_degree: usize,
    /// Largest out-degree.
    pub max_out_degree: usize,
    /// Count-weighted log-log slope of the in-degree distribution
    /// (`None` for degenerate graphs).
    pub indegree_slope: Option<f64>,
    /// Fraction of nodes in the largest strongly connected component.
    pub largest_scc_fraction: f64,
    /// Number of weakly connected components.
    pub weak_components: usize,
}

impl GraphSummary {
    /// Compute the full profile (runs SCC and component analyses —
    /// linear in the graph size, fine up to millions of edges).
    pub fn compute(g: &CsrGraph) -> Self {
        let nodes = g.num_nodes();
        GraphSummary {
            nodes,
            edges: g.num_edges(),
            dangling: g.num_dangling(),
            max_in_degree: DegreeHistogram::indegree(g).max_degree(),
            max_out_degree: DegreeHistogram::outdegree(g).max_degree(),
            indegree_slope: DegreeHistogram::indegree(g).log_log_slope(),
            largest_scc_fraction: if nodes == 0 {
                0.0
            } else {
                largest_scc_size(g) as f64 / nodes as f64
            },
            weak_components: num_weak_components(g),
        }
    }
}

impl std::fmt::Display for GraphSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} nodes, {} edges, {} dangling; max in/out degree {}/{}; \
             in-degree slope {}; largest SCC {:.1}%; {} weak component(s)",
            self.nodes,
            self.edges,
            self.dangling,
            self.max_in_degree,
            self.max_out_degree,
            self.indegree_slope
                .map_or("n/a".into(), |s| format!("{s:.2}")),
            self.largest_scc_fraction * 100.0,
            self.weak_components
        )
    }
}

/// Breadth-first search from `start`, treating edges as directed.
/// Returns the set of reached nodes in visit order (including `start`).
pub fn bfs(g: &CsrGraph, start: PageId) -> Vec<PageId> {
    let mut seen = vec![false; g.num_nodes()];
    let mut order = Vec::new();
    let mut queue = std::collections::VecDeque::new();
    seen[start.index()] = true;
    queue.push_back(start);
    while let Some(v) = queue.pop_front() {
        order.push(v);
        for u in g.successors(v) {
            if !seen[u.index()] {
                seen[u.index()] = true;
                queue.push_back(u);
            }
        }
    }
    order
}

/// Number of weakly connected components (edges treated as undirected).
pub fn num_weak_components(g: &CsrGraph) -> usize {
    let n = g.num_nodes();
    let mut seen = vec![false; n];
    let mut count = 0;
    let mut queue = std::collections::VecDeque::new();
    for root in 0..n {
        if seen[root] {
            continue;
        }
        count += 1;
        seen[root] = true;
        queue.push_back(PageId(root as u32));
        while let Some(v) = queue.pop_front() {
            for u in g.successors(v).chain(g.predecessors(v)) {
                if !seen[u.index()] {
                    seen[u.index()] = true;
                    queue.push_back(u);
                }
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn graph(edges: &[(u32, u32)]) -> CsrGraph {
        let mut b = GraphBuilder::new();
        for &(s, d) in edges {
            b.add_edge(PageId(s), PageId(d));
        }
        b.build()
    }

    #[test]
    fn indegree_histogram() {
        let g = graph(&[(0, 2), (1, 2), (3, 2), (2, 0)]);
        let h = DegreeHistogram::indegree(&g);
        assert_eq!(h.count(0), 2); // nodes 1, 3
        assert_eq!(h.count(1), 1); // node 0
        assert_eq!(h.count(3), 1); // node 2
        assert_eq!(h.max_degree(), 3);
    }

    #[test]
    fn log_log_slope_of_exact_power_law() {
        // counts = 1000 * d^-2 for d in 1..=10 → slope −2 exactly.
        let pts: Vec<(f64, f64)> = (1..=10)
            .map(|d| {
                let d = d as f64;
                (d.log10(), (1000.0 * d.powi(-2)).log10())
            })
            .collect();
        let slope = linear_regression_slope(&pts).unwrap();
        assert!((slope + 2.0).abs() < 1e-9, "slope {slope}");
    }

    #[test]
    fn log_log_slope_requires_variation() {
        assert_eq!(linear_regression_slope(&[(1.0, 2.0)]), None);
        assert_eq!(linear_regression_slope(&[(1.0, 2.0), (1.0, 3.0)]), None);
    }

    #[test]
    fn scc_of_cycle_is_single_component() {
        let g = graph(&[(0, 1), (1, 2), (2, 0)]);
        assert_eq!(num_sccs(&g), 1);
        assert_eq!(largest_scc_size(&g), 3);
    }

    #[test]
    fn scc_of_dag_is_one_per_node() {
        let g = graph(&[(0, 1), (1, 2), (0, 2)]);
        assert_eq!(num_sccs(&g), 3);
        assert_eq!(largest_scc_size(&g), 1);
    }

    #[test]
    fn scc_two_cycles_bridged() {
        // cycle {0,1} → cycle {2,3}
        let g = graph(&[(0, 1), (1, 0), (1, 2), (2, 3), (3, 2)]);
        let comp = strongly_connected_components(&g);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[2], comp[3]);
        assert_ne!(comp[0], comp[2]);
        assert_eq!(num_sccs(&g), 2);
    }

    #[test]
    fn bfs_visits_reachable_only() {
        let g = graph(&[(0, 1), (1, 2), (3, 0)]);
        let order = bfs(&g, PageId(0));
        assert_eq!(order, vec![PageId(0), PageId(1), PageId(2)]);
    }

    #[test]
    fn graph_summary_profiles_structure() {
        let g = graph(&[(0, 1), (1, 2), (2, 0), (3, 0)]);
        let s = GraphSummary::compute(&g);
        assert_eq!(s.nodes, 4);
        assert_eq!(s.edges, 4);
        assert_eq!(s.dangling, 0);
        assert_eq!(s.max_in_degree, 2); // node 0: from 2 and 3
        assert_eq!(s.max_out_degree, 1);
        assert_eq!(s.weak_components, 1);
        assert!((s.largest_scc_fraction - 0.75).abs() < 1e-12);
        let text = s.to_string();
        assert!(text.contains("4 nodes"));
        assert!(text.contains("75.0%"));
    }

    #[test]
    fn graph_summary_counts_dangling() {
        let g = graph(&[(0, 1)]);
        let s = GraphSummary::compute(&g);
        assert_eq!(s.dangling, 1);
        assert!(s.indegree_slope.is_none()); // only one nonzero degree ≥ 1
    }

    #[test]
    fn weak_components() {
        let g = graph(&[(0, 1), (2, 3)]);
        assert_eq!(num_weak_components(&g), 2);
        let g2 = graph(&[(0, 1), (2, 1)]);
        assert_eq!(num_weak_components(&g2), 1);
    }
}
