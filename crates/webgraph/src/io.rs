//! Graph serialization: a human-readable text edge-list format and a
//! compact little-endian binary format.
//!
//! Both formats round-trip through [`CsrGraph`]; the binary format is used
//! by the experiment binaries to cache generated datasets between runs.

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use crate::id::PageId;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::io::{self, BufRead, Write};

/// Magic header of the binary format ("JXPG" + version 1).
const MAGIC: [u8; 4] = *b"JXPG";
const VERSION: u32 = 1;

/// Upper bound on the node count accepted from a binary header.
///
/// The header is read before any allocation, so a corrupt or hostile
/// file could otherwise request a multi-gigabyte offset table from 24
/// bytes of input. 2³⁰ nodes is far beyond any dataset this in-memory
/// format is used for (larger graphs go through `jxp-segstore`), while
/// still leaving the id space (`u32`) the binding constraint for real
/// data.
pub const MAX_BIN_NODES: usize = 1 << 30;

/// Write `g` as a text edge list: a header line `# nodes <n>` followed by
/// one `src dst` pair per line.
pub fn write_edge_list(g: &CsrGraph, w: &mut impl Write) -> io::Result<()> {
    writeln!(w, "# nodes {}", g.num_nodes())?;
    for (s, d) in g.edges() {
        writeln!(w, "{} {}", s.0, d.0)?;
    }
    Ok(())
}

/// Read a text edge list produced by [`write_edge_list`]. Lines starting
/// with `#` other than the node-count header are ignored as comments, as
/// are blank lines.
pub fn read_edge_list(r: &mut impl BufRead) -> io::Result<CsrGraph> {
    let mut b = GraphBuilder::new();
    for line in r.lines() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let mut it = rest.split_whitespace();
            if it.next() == Some("nodes") {
                if let Some(n) = it.next().and_then(|s| s.parse::<usize>().ok()) {
                    b.ensure_nodes(n);
                }
            }
            continue;
        }
        let mut it = line.split_whitespace();
        let parse = |tok: Option<&str>| -> io::Result<u32> {
            tok.ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "missing field"))?
                .parse::<u32>()
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
        };
        let s = parse(it.next())?;
        let d = parse(it.next())?;
        b.add_edge(PageId(s), PageId(d));
    }
    Ok(b.build())
}

/// Serialize `g` into the compact binary format.
pub fn to_bytes(g: &CsrGraph) -> Bytes {
    let mut buf = BytesMut::with_capacity(16 + g.num_edges() * 8);
    buf.put_slice(&MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u64_le(g.num_nodes() as u64);
    buf.put_u64_le(g.num_edges() as u64);
    for (s, d) in g.edges() {
        buf.put_u32_le(s.0);
        buf.put_u32_le(d.0);
    }
    buf.freeze()
}

/// Deserialize a graph from the binary format.
///
/// # Errors
/// Returns `InvalidData` on bad magic, unsupported version or truncation.
pub fn from_bytes(mut buf: impl Buf) -> io::Result<CsrGraph> {
    let err = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
    if buf.remaining() < 24 {
        return Err(err("truncated header"));
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if magic != MAGIC {
        return Err(err("bad magic"));
    }
    if buf.get_u32_le() != VERSION {
        return Err(err("unsupported version"));
    }
    // Bound both counts BEFORE allocating anything: a 24-byte header
    // can claim arbitrary u64 values, and `m * 8` on an unchecked
    // `usize` cast would wrap for huge edge counts, sneaking past a
    // naive truncation check into an allocation (or a panic) sized by
    // attacker-controlled data.
    let n64 = buf.get_u64_le();
    let m64 = buf.get_u64_le();
    if n64 > MAX_BIN_NODES as u64 {
        return Err(err("header node count exceeds limit"));
    }
    let n = n64 as usize;
    if m64 > (buf.remaining() / 8) as u64 {
        return Err(err("truncated edge section"));
    }
    let m = m64 as usize;
    if buf.remaining() != m * 8 {
        return Err(err("oversized edge section"));
    }
    let mut b = GraphBuilder::with_capacity(m);
    b.ensure_nodes(n);
    for _ in 0..m {
        let s = buf.get_u32_le();
        let d = buf.get_u32_le();
        if s as usize >= n || d as usize >= n {
            return Err(err("edge references node out of range"));
        }
        b.add_edge(PageId(s), PageId(d));
    }
    Ok(b.build())
}

/// Write the binary format to a file.
pub fn save_binary(g: &CsrGraph, path: &std::path::Path) -> io::Result<()> {
    std::fs::write(path, to_bytes(g))
}

/// Read the binary format from a file.
pub fn load_binary(path: &std::path::Path) -> io::Result<CsrGraph> {
    let data = std::fs::read(path)?;
    from_bytes(&data[..])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrGraph {
        let mut b = GraphBuilder::new();
        for (s, d) in [(0u32, 1u32), (1, 2), (2, 0), (2, 3)] {
            b.add_edge(PageId(s), PageId(d));
        }
        b.ensure_nodes(6); // trailing isolated nodes exercise the header
        b.build()
    }

    #[test]
    fn text_round_trip() {
        let g = sample();
        let mut out = Vec::new();
        write_edge_list(&g, &mut out).unwrap();
        let g2 = read_edge_list(&mut &out[..]).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn text_ignores_comments_and_blank_lines() {
        let text = "# a comment\n\n# nodes 4\n0 1\n  1 2  \n";
        let g = read_edge_list(&mut text.as_bytes()).unwrap();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn text_rejects_garbage() {
        let text = "0 x\n";
        assert!(read_edge_list(&mut text.as_bytes()).is_err());
        let text = "0\n";
        assert!(read_edge_list(&mut text.as_bytes()).is_err());
    }

    #[test]
    fn binary_round_trip() {
        let g = sample();
        let bytes = to_bytes(&g);
        let g2 = from_bytes(&bytes[..]).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let mut bytes = to_bytes(&sample()).to_vec();
        bytes[0] = b'X';
        assert!(from_bytes(&bytes[..]).is_err());
    }

    #[test]
    fn binary_rejects_truncation() {
        let bytes = to_bytes(&sample());
        assert!(from_bytes(&bytes[..bytes.len() - 3]).is_err());
        assert!(from_bytes(&bytes[..10]).is_err());
    }

    #[test]
    fn binary_rejects_out_of_range_edges() {
        let g = sample();
        let mut bytes = to_bytes(&g).to_vec();
        // Corrupt the first edge's src to a huge id.
        let off = 24;
        bytes[off..off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(from_bytes(&bytes[..]).is_err());
    }

    /// A 24-byte header claiming `n` nodes and `m` edges with no edge
    /// payload at all.
    fn bare_header(n: u64, m: u64) -> Vec<u8> {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.extend_from_slice(&n.to_le_bytes());
        bytes.extend_from_slice(&m.to_le_bytes());
        bytes
    }

    #[test]
    fn binary_rejects_huge_node_count_before_allocating() {
        // Must error out, not attempt a u64::MAX-sized offset table.
        for n in [u64::MAX, MAX_BIN_NODES as u64 + 1] {
            let e = from_bytes(&bare_header(n, 0)[..]).unwrap_err();
            assert_eq!(e.kind(), io::ErrorKind::InvalidData, "n = {n}");
        }
        // Edge-free graphs below the bound still decode (isolated
        // nodes are legal; only absurd counts are rejected).
        let g = from_bytes(&bare_header(1000, 0)[..]).unwrap();
        assert_eq!(g.num_nodes(), 1000);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn binary_rejects_overflowing_edge_count() {
        // m * 8 wraps to 0 for m = 2^61 on 64-bit, which slipped past
        // the old `remaining() < m * 8` truncation check and panicked
        // reading edges from an empty buffer. Must be a clean error.
        for m in [u64::MAX, 1u64 << 61, (1u64 << 61) + 1] {
            let e = from_bytes(&bare_header(4, m)[..]).unwrap_err();
            assert_eq!(e.kind(), io::ErrorKind::InvalidData, "m = {m}");
        }
    }

    #[test]
    fn binary_rejects_trailing_garbage() {
        let mut bytes = to_bytes(&sample()).to_vec();
        bytes.extend_from_slice(&[0u8; 5]);
        assert!(from_bytes(&bytes[..]).is_err());
    }

    #[test]
    fn binary_rejects_header_shrunk_edge_count() {
        // A header corrupted to claim fewer edges than the payload
        // carries must not silently drop the tail.
        let g = sample();
        let mut bytes = to_bytes(&g).to_vec();
        bytes[16..24].copy_from_slice(&(g.num_edges() as u64 - 1).to_le_bytes());
        assert!(from_bytes(&bytes[..]).is_err());
    }

    #[test]
    fn load_binary_rejects_corrupt_file_on_disk() {
        let dir = std::env::temp_dir().join("jxp_io_test_corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.jxpg");
        std::fs::write(&path, bare_header(u64::MAX, u64::MAX)).unwrap();
        assert!(load_binary(&path).is_err());
    }

    #[test]
    fn load_missing_file_reports_io_error() {
        let path = std::env::temp_dir().join("jxp_io_test_does_not_exist.jxpg");
        let _ = std::fs::remove_file(&path);
        assert!(load_binary(&path).is_err());
    }

    #[test]
    fn file_round_trip() {
        let g = sample();
        let dir = std::env::temp_dir().join("jxp_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.jxpg");
        save_binary(&g, &path).unwrap();
        let g2 = load_binary(&path).unwrap();
        assert_eq!(g, g2);
    }
}
