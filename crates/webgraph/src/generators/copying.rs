//! The copying model of Kumar et al. (FOCS 2000).

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use crate::id::PageId;
use rand::Rng;

/// Generate a Web graph with the *copying model*: each new node picks a
/// random existing "prototype" node and emits `out_per_node` links; with
/// probability `copy_prob` the i-th link copies the prototype's i-th
/// out-link, otherwise it points to a uniformly random existing node.
///
/// The copying model is the classic generative explanation for power-law
/// in-degrees *and* the abundant bipartite cores of the real Web; it is a
/// second, structurally different source of Web-like graphs to check that
/// JXP's behaviour is not an artifact of preferential attachment.
pub fn copying_model(
    n: usize,
    out_per_node: usize,
    copy_prob: f64,
    rng: &mut impl Rng,
) -> CsrGraph {
    assert!(
        (0.0..=1.0).contains(&copy_prob),
        "copy_prob must be in [0,1]"
    );
    let mut b = GraphBuilder::with_capacity(n * out_per_node);
    b.ensure_nodes(n);
    // adj[v] = out-links of v, needed to copy from prototypes.
    let mut adj: Vec<Vec<u32>> = Vec::with_capacity(n);
    if n == 0 {
        return b.build();
    }
    adj.push(Vec::new());
    for v in 1..n as u32 {
        let proto = rng.gen_range(0..v);
        let mut targets = crate::hash::FxHashSet::default();
        let want = out_per_node.min(v as usize);
        let proto_links = adj[proto as usize].clone();
        let mut guard = 0usize;
        while targets.len() < want && guard < 100 * want + 100 {
            guard += 1;
            let t = if rng.gen_bool(copy_prob) && !proto_links.is_empty() {
                proto_links[rng.gen_range(0..proto_links.len())]
            } else {
                rng.gen_range(0..v)
            };
            if t != v {
                targets.insert(t);
            }
        }
        let mut list: Vec<u32> = targets.into_iter().collect();
        list.sort_unstable();
        for &t in &list {
            b.add_edge(PageId(v), PageId(t));
        }
        adj.push(list);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::DegreeHistogram;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn counts_and_structure() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = copying_model(1000, 5, 0.5, &mut rng);
        assert_eq!(g.num_nodes(), 1000);
        assert!(g.num_edges() > 4000);
        assert!(g.edges().all(|(s, d)| s != d));
        // Edges always point to older (smaller-id) nodes.
        assert!(g.edges().all(|(s, d)| d < s));
    }

    #[test]
    fn heavy_tail_with_copying() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = copying_model(5000, 4, 0.7, &mut rng);
        let h = DegreeHistogram::indegree(&g);
        assert!(h.max_degree() > 40, "max in-degree {}", h.max_degree());
    }

    #[test]
    fn zero_copy_prob_is_uniform_attachment() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = copying_model(2000, 3, 0.0, &mut rng);
        // Uniform attachment yields a far lighter tail than copying.
        let h = DegreeHistogram::indegree(&g);
        assert!(h.max_degree() < 60, "max in-degree {}", h.max_degree());
    }

    #[test]
    fn deterministic_for_same_seed() {
        let g1 = copying_model(300, 3, 0.5, &mut StdRng::seed_from_u64(5));
        let g2 = copying_model(300, 3, 0.5, &mut StdRng::seed_from_u64(5));
        assert_eq!(g1, g2);
    }

    #[test]
    #[should_panic(expected = "copy_prob")]
    fn invalid_copy_prob_panics() {
        let mut rng = StdRng::seed_from_u64(6);
        let _ = copying_model(10, 2, 1.5, &mut rng);
    }
}
