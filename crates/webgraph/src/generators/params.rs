//! Named dataset presets replicating the scale of the paper's collections.

use super::categorized::{CategorizedGraph, CategorizedParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A named dataset preset: categorized-generator parameters scaled so the
/// generated graph matches one of the paper's collections in node count,
/// edge count and category structure.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetPreset {
    /// Human-readable name used in experiment output.
    pub name: &'static str,
    /// Generator parameters.
    pub params: CategorizedParams,
    /// Default RNG seed so every experiment binary regenerates the exact
    /// same graph.
    pub seed: u64,
}

impl DatasetPreset {
    /// Generate the dataset with its default seed.
    pub fn generate(&self) -> CategorizedGraph {
        let mut rng = StdRng::seed_from_u64(self.seed);
        CategorizedGraph::generate(&self.params, &mut rng)
    }

    /// Generate a proportionally scaled-down version with `scale` ∈ (0, 1]:
    /// same categories and density, fewer nodes. Used by tests and quick
    /// experiment runs.
    pub fn generate_scaled(&self, scale: f64) -> CategorizedGraph {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        let mut p = self.params.clone();
        p.nodes_per_category = ((p.nodes_per_category as f64 * scale).round() as usize).max(10);
        let mut rng = StdRng::seed_from_u64(self.seed);
        CategorizedGraph::generate(&p, &mut rng)
    }
}

/// Stand-in for the paper's Amazon.com product graph: 55,196 pages,
/// 237,160 links, 10 categories (§6.1). The generator gives
/// 10 × 5,520 = 55,200 nodes and ≈ 4.3 links per node — the paper's ratio
/// (237,160 / 55,196 ≈ 4.30).
pub fn amazon_2005() -> DatasetPreset {
    DatasetPreset {
        name: "amazon",
        params: CategorizedParams {
            num_categories: 10,
            nodes_per_category: 5_520,
            intra_out_per_node: 4,
            cross_fraction: 0.075,
        },
        seed: 0xA11A_2005,
    }
}

/// Stand-in for the paper's focused Web crawl: 103,591 pages, 1,633,276
/// links, 10 categories (§6.1). The generator gives 10 × 10,360 = 103,600
/// nodes and ≈ 15.8 links per node (paper: 1,633,276 / 103,591 ≈ 15.77).
pub fn web_crawl_2005() -> DatasetPreset {
    DatasetPreset {
        name: "web",
        params: CategorizedParams {
            num_categories: 10,
            nodes_per_category: 10_360,
            intra_out_per_node: 14,
            cross_fraction: 0.127,
        },
        seed: 0x3EB_2005,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::DegreeHistogram;

    #[test]
    fn amazon_scale_matches_paper() {
        // Full-size generation is cheap enough for a unit test (~240k edges).
        let g = amazon_2005().generate();
        let n = g.graph.num_nodes() as f64;
        let m = g.graph.num_edges() as f64;
        assert!((n - 55_196.0).abs() / 55_196.0 < 0.01, "n = {n}");
        assert!((m - 237_160.0).abs() / 237_160.0 < 0.10, "m = {m}");
        assert_eq!(g.num_categories, 10);
    }

    #[test]
    fn web_scaled_down_keeps_density() {
        let g = web_crawl_2005().generate_scaled(0.05);
        let n = g.graph.num_nodes() as f64;
        let m = g.graph.num_edges() as f64;
        assert!((m / n) > 10.0, "density {}", m / n);
        assert_eq!(g.num_categories, 10);
    }

    #[test]
    fn amazon_indegree_power_law() {
        let g = amazon_2005().generate_scaled(0.2);
        let slope = DegreeHistogram::indegree(&g.graph).log_log_slope().unwrap();
        assert!(slope < -1.0, "slope {slope}");
    }

    #[test]
    #[should_panic(expected = "scale")]
    fn invalid_scale_panics() {
        let _ = amazon_2005().generate_scaled(0.0);
    }
}
