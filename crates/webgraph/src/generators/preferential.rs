//! Directed preferential attachment.

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use crate::id::PageId;
use rand::Rng;

/// Generate a directed preferential-attachment graph with `n` nodes where
/// each new node emits `out_per_node` links.
///
/// Targets are chosen proportionally to `in_degree + 1` (the "+1" gives
/// zero-in-degree nodes a chance, the standard Barabási–Albert smoothing),
/// implemented with the repeated-endpoint urn trick: the urn holds one copy
/// of every node plus one copy per received in-link, so a uniform draw from
/// it is exactly a draw ∝ `in_degree + 1`.
///
/// The resulting in-degree distribution follows a power law with exponent
/// ≈ −2, matching the paper's Figure 3 shape.
pub fn preferential_attachment(n: usize, out_per_node: usize, rng: &mut impl Rng) -> CsrGraph {
    preferential_attachment_into(n, out_per_node, 0, rng)
}

/// Like [`preferential_attachment`], but node ids start at `base` — used by
/// the categorized generator to lay category blocks side by side in a
/// single global id space.
pub fn preferential_attachment_into(
    n: usize,
    out_per_node: usize,
    base: u32,
    rng: &mut impl Rng,
) -> CsrGraph {
    let mut b = GraphBuilder::with_capacity(n * out_per_node);
    let edges = preferential_edges(n, out_per_node, base, rng);
    b.ensure_nodes(base as usize + n);
    for (s, d) in edges {
        b.add_edge(s, d);
    }
    b.build()
}

/// The raw edges of a preferential-attachment process (exposed so the
/// categorized generator can pool edges from several blocks before
/// building one graph).
pub fn preferential_edges(
    n: usize,
    out_per_node: usize,
    base: u32,
    rng: &mut impl Rng,
) -> Vec<(PageId, PageId)> {
    let mut edges = Vec::with_capacity(n * out_per_node);
    if n == 0 {
        return edges;
    }
    // Urn of target endpoints: one entry per node (smoothing) plus one per
    // received link.
    let mut urn: Vec<u32> = Vec::with_capacity(n * (out_per_node + 1));
    urn.push(base);
    for i in 1..n as u32 {
        let src = base + i;
        let links = out_per_node.min(i as usize);
        let mut targets = crate::hash::FxHashSet::default();
        while targets.len() < links {
            let t = urn[rng.gen_range(0..urn.len())];
            if t != src {
                targets.insert(t);
            }
        }
        for &t in &targets {
            edges.push((PageId(src), PageId(t)));
            urn.push(t);
        }
        urn.push(src);
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::DegreeHistogram;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn node_and_edge_counts() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = preferential_attachment(1000, 3, &mut rng);
        assert_eq!(g.num_nodes(), 1000);
        // First few nodes emit fewer links; the rest emit exactly 3.
        assert_eq!(g.num_edges(), 1 + 2 + 3 * 997);
    }

    #[test]
    fn no_self_loops_or_duplicates() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = preferential_attachment(500, 4, &mut rng);
        assert!(g.edges().all(|(s, d)| s != d));
        // CsrGraph dedups; verify degree sum consistency instead.
        let m: usize = g.nodes().map(|v| g.out_degree(v)).sum();
        assert_eq!(m, g.num_edges());
    }

    #[test]
    fn indegree_is_heavy_tailed() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = preferential_attachment(5000, 3, &mut rng);
        let h = DegreeHistogram::indegree(&g);
        // A power-law graph has a hub with in-degree far above the mean (3).
        assert!(h.max_degree() > 50, "max in-degree {}", h.max_degree());
        let slope = h.log_log_slope().unwrap();
        assert!(
            slope < -1.0,
            "expected steep negative log-log slope, got {slope}"
        );
    }

    #[test]
    fn base_offset_shifts_ids() {
        let mut rng = StdRng::seed_from_u64(4);
        let edges = preferential_edges(10, 2, 100, &mut rng);
        assert!(edges
            .iter()
            .all(|&(s, d)| (100..110).contains(&s.0) && (100..110).contains(&d.0)));
    }

    #[test]
    fn deterministic_for_same_seed() {
        let g1 = preferential_attachment(200, 3, &mut StdRng::seed_from_u64(9));
        let g2 = preferential_attachment(200, 3, &mut StdRng::seed_from_u64(9));
        assert_eq!(g1, g2);
    }
}
