//! Synthetic Web-graph generators.
//!
//! The paper evaluates on two proprietary 2005 datasets (an Amazon.com
//! product graph and a focused Web crawl). These are not available, so we
//! generate synthetic graphs that match the properties the paper itself
//! says matter (§6.1 and Figure 3): node count, edge count, a close-to-
//! power-law in-degree distribution, and a 10-category thematic structure
//! with mostly-intra-category links.
//!
//! Three classic random-graph models are provided plus the categorized
//! composite generator used for the actual datasets:
//!
//! * [`preferential`] — directed preferential attachment (Barabási–Albert
//!   flavoured), power-law in-degrees;
//! * [`copying`] — the copying model of Kumar et al., the standard
//!   explanation for power laws in Web graphs;
//! * [`erdos_renyi`] — G(n, m) uniform random graphs (a *non*-power-law
//!   control used in tests);
//! * [`categorized`] — categories × preferential attachment with
//!   cross-category links; presets in [`params`] replicate the scale of
//!   the paper's two collections.

pub mod categorized;
pub mod copying;
pub mod erdos_renyi;
pub mod params;
pub mod preferential;

pub use categorized::{CategorizedGraph, CategorizedParams};
pub use copying::copying_model;
pub use erdos_renyi::gnm;
pub use params::{amazon_2005, web_crawl_2005, DatasetPreset};
pub use preferential::preferential_attachment;
