//! Uniform random directed graphs, G(n, m).

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use crate::id::PageId;
use rand::Rng;

/// Generate a directed G(n, m) graph: `m` distinct directed edges chosen
/// uniformly at random among the `n·(n−1)` non-self-loop pairs.
///
/// Used in tests as a control: its in-degree distribution is binomial, not
/// power-law, so analyses that should distinguish Web-like graphs from
/// uniform noise can be validated against it.
///
/// # Panics
/// Panics if `m > n·(n−1)` (more edges requested than exist).
pub fn gnm(n: usize, m: usize, rng: &mut impl Rng) -> CsrGraph {
    assert!(n >= 1 || m == 0, "edges in an empty graph");
    let max_edges = n.saturating_mul(n.saturating_sub(1));
    assert!(
        m <= max_edges,
        "requested {m} edges, only {max_edges} possible"
    );
    let mut b = GraphBuilder::with_capacity(m);
    b.ensure_nodes(n);
    let mut chosen = crate::hash::FxHashSet::default();
    while chosen.len() < m {
        let s = rng.gen_range(0..n as u32);
        let d = rng.gen_range(0..n as u32);
        if s != d && chosen.insert((s, d)) {
            b.add_edge(PageId(s), PageId(d));
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exact_counts() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = gnm(50, 200, &mut rng);
        assert_eq!(g.num_nodes(), 50);
        assert_eq!(g.num_edges(), 200);
    }

    #[test]
    fn no_self_loops() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = gnm(20, 100, &mut rng);
        assert!(g.edges().all(|(s, d)| s != d));
    }

    #[test]
    fn deterministic_for_same_seed() {
        let g1 = gnm(30, 60, &mut StdRng::seed_from_u64(7));
        let g2 = gnm(30, 60, &mut StdRng::seed_from_u64(7));
        assert_eq!(g1, g2);
    }

    #[test]
    fn dense_graph_saturates() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = gnm(5, 20, &mut rng); // all 5·4 = 20 possible edges
        assert_eq!(g.num_edges(), 20);
    }

    #[test]
    #[should_panic(expected = "only")]
    fn too_many_edges_panics() {
        let mut rng = StdRng::seed_from_u64(4);
        let _ = gnm(3, 7, &mut rng);
    }
}
