//! The categorized Web-graph generator that substitutes for the paper's
//! thematic collections.
//!
//! The paper's two datasets share a structure (§6.1): pages belong to one
//! of 10 thematic categories, links are mostly intra-category (focused
//! crawls / "similar product" recommendations), the in-degree distribution
//! is close to a power law (Figure 3).
//!
//! This generator reproduces exactly that: one preferential-attachment
//! block per category plus preferentially-attached cross-category links.

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use crate::id::PageId;
use rand::Rng;

use super::preferential::preferential_edges;

/// Parameters for [`CategorizedGraph::generate`].
#[derive(Debug, Clone, PartialEq)]
pub struct CategorizedParams {
    /// Number of thematic categories (the paper uses 10).
    pub num_categories: usize,
    /// Nodes per category (total nodes = `num_categories ×
    /// nodes_per_category`).
    pub nodes_per_category: usize,
    /// Out-links emitted per node inside its category block.
    pub intra_out_per_node: usize,
    /// Cross-category links as a fraction of intra-category links
    /// (e.g. `0.15` adds 15% extra edges across category boundaries).
    pub cross_fraction: f64,
}

impl CategorizedParams {
    /// Total number of nodes this parameterization produces.
    pub fn total_nodes(&self) -> usize {
        self.num_categories * self.nodes_per_category
    }
}

/// A categorized synthetic Web graph: the graph plus the category label of
/// every page.
#[derive(Debug, Clone)]
pub struct CategorizedGraph {
    /// The link graph.
    pub graph: CsrGraph,
    /// `category_of[p]` = category index (0-based) of page `p`.
    pub category_of: Vec<u16>,
    /// Number of categories.
    pub num_categories: usize,
}

impl CategorizedGraph {
    /// Generate a categorized graph.
    ///
    /// # Panics
    /// Panics if `num_categories == 0` or `cross_fraction < 0`.
    pub fn generate(params: &CategorizedParams, rng: &mut impl Rng) -> Self {
        assert!(params.num_categories > 0, "need at least one category");
        assert!(params.cross_fraction >= 0.0, "cross_fraction must be ≥ 0");
        let npc = params.nodes_per_category;
        let total = params.total_nodes();
        let mut builder = GraphBuilder::with_capacity(
            (total as f64 * params.intra_out_per_node as f64 * (1.0 + params.cross_fraction))
                as usize,
        );
        builder.ensure_nodes(total);
        let mut category_of = vec![0u16; total];
        // Per-category urns for preferential cross-link targets: one entry
        // per node plus one per intra-category in-link received.
        let mut urns: Vec<Vec<u32>> = Vec::with_capacity(params.num_categories);
        let mut intra_edges = 0usize;
        for c in 0..params.num_categories {
            let base = (c * npc) as u32;
            for p in base..base + npc as u32 {
                category_of[p as usize] = c as u16;
            }
            let edges = preferential_edges(npc, params.intra_out_per_node, base, rng);
            let mut urn: Vec<u32> = (base..base + npc as u32).collect();
            for &(s, d) in &edges {
                builder.add_edge(s, d);
                urn.push(d.0);
            }
            intra_edges += edges.len();
            urns.push(urn);
        }
        // Cross-category links: preferential targets in a random *other*
        // category, so global hubs stay hubs across the category boundary
        // and the global in-degree distribution keeps its power-law tail.
        if params.num_categories > 1 {
            let cross = (intra_edges as f64 * params.cross_fraction).round() as usize;
            for _ in 0..cross {
                let src = rng.gen_range(0..total as u32);
                let src_cat = category_of[src as usize] as usize;
                let mut dst_cat = rng.gen_range(0..params.num_categories - 1);
                if dst_cat >= src_cat {
                    dst_cat += 1;
                }
                let urn = &urns[dst_cat];
                let dst = urn[rng.gen_range(0..urn.len())];
                builder.add_edge(PageId(src), PageId(dst));
            }
        }
        CategorizedGraph {
            graph: builder.build(),
            category_of,
            num_categories: params.num_categories,
        }
    }

    /// All pages belonging to category `c`.
    pub fn pages_in_category(&self, c: usize) -> impl Iterator<Item = PageId> + '_ {
        self.category_of
            .iter()
            .enumerate()
            .filter(move |&(_, &cat)| cat as usize == c)
            .map(|(p, _)| PageId(p as u32))
    }

    /// Category of page `p`.
    pub fn category(&self, p: PageId) -> usize {
        self.category_of[p.index()] as usize
    }

    /// Fraction of edges whose endpoints are in the same category.
    pub fn intra_category_edge_fraction(&self) -> f64 {
        let m = self.graph.num_edges();
        if m == 0 {
            return 1.0;
        }
        let intra = self
            .graph
            .edges()
            .filter(|&(s, d)| self.category(s) == self.category(d))
            .count();
        intra as f64 / m as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::DegreeHistogram;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_params() -> CategorizedParams {
        CategorizedParams {
            num_categories: 4,
            nodes_per_category: 250,
            intra_out_per_node: 4,
            cross_fraction: 0.2,
        }
    }

    #[test]
    fn node_count_and_labels() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = CategorizedGraph::generate(&small_params(), &mut rng);
        assert_eq!(g.graph.num_nodes(), 1000);
        assert_eq!(g.pages_in_category(0).count(), 250);
        assert_eq!(g.category(PageId(0)), 0);
        assert_eq!(g.category(PageId(999)), 3);
    }

    #[test]
    fn links_are_mostly_intra_category() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = CategorizedGraph::generate(&small_params(), &mut rng);
        let f = g.intra_category_edge_fraction();
        assert!(f > 0.7, "intra fraction {f}");
        assert!(f < 1.0, "cross links must exist");
    }

    #[test]
    fn indegree_heavy_tail_survives_categorization() {
        let mut rng = StdRng::seed_from_u64(3);
        let params = CategorizedParams {
            num_categories: 5,
            nodes_per_category: 1000,
            intra_out_per_node: 4,
            cross_fraction: 0.15,
        };
        let g = CategorizedGraph::generate(&params, &mut rng);
        let h = DegreeHistogram::indegree(&g.graph);
        let slope = h.log_log_slope().unwrap();
        assert!(slope < -1.0, "log-log slope {slope}");
        assert!(h.max_degree() > 40);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let g1 = CategorizedGraph::generate(&small_params(), &mut StdRng::seed_from_u64(4));
        let g2 = CategorizedGraph::generate(&small_params(), &mut StdRng::seed_from_u64(4));
        assert_eq!(g1.graph, g2.graph);
        assert_eq!(g1.category_of, g2.category_of);
    }

    #[test]
    fn single_category_has_no_cross_links() {
        let params = CategorizedParams {
            num_categories: 1,
            nodes_per_category: 100,
            intra_out_per_node: 3,
            cross_fraction: 0.5,
        };
        let mut rng = StdRng::seed_from_u64(5);
        let g = CategorizedGraph::generate(&params, &mut rng);
        assert!((g.intra_category_edge_fraction() - 1.0).abs() < 1e-12);
    }
}
