#![deny(missing_docs)]
//! # jxp-webgraph
//!
//! Web-graph substrate for the JXP (VLDB 2006) reproduction.
//!
//! This crate provides everything the JXP algorithm and its evaluation need
//! from a graph library:
//!
//! * a compact, immutable [`CsrGraph`] (forward *and* reverse adjacency in
//!   compressed-sparse-row form, `u32` node ids),
//! * a mutable [`GraphBuilder`] for constructing graphs edge by edge,
//! * synthetic **generators** that stand in for the paper's proprietary 2005
//!   Amazon and Web-crawl datasets ([`generators`]),
//! * structural **analysis** (degree distributions, power-law fit, SCCs,
//!   BFS) used to validate the generators against the paper's Figure 3,
//! * **subgraph** extraction with local↔global id maps (peers hold
//!   fragments of the global graph),
//! * text and binary **I/O**.
//!
//! ```
//! use jxp_webgraph::{GraphBuilder, PageId};
//!
//! let mut b = GraphBuilder::new();
//! b.add_edge(PageId(0), PageId(1));
//! b.add_edge(PageId(1), PageId(2));
//! b.add_edge(PageId(2), PageId(0));
//! let g = b.build();
//! assert_eq!(g.num_nodes(), 3);
//! assert_eq!(g.out_degree(PageId(0)), 1);
//! ```

pub mod analysis;
pub mod builder;
pub mod csr;
pub mod generators;
pub mod hash;
pub mod id;
pub mod io;
pub mod source;
pub mod subgraph;

pub use builder::GraphBuilder;
pub use csr::CsrGraph;
pub use hash::{FxHashMap, FxHashSet};
pub use id::PageId;
pub use source::GraphSource;
pub use subgraph::Subgraph;
