//! Shared experiment drivers used by the per-figure binaries (the Amazon
//! and Web variants of each figure differ only in the dataset preset).

use crate::{
    build_network, bytes_to_reach, load_dataset, meetings_to_reach, print_samples, run_convergence,
    samples_to_csv, ExperimentCtx,
};
use jxp_core::selection::{PreMeetingsConfig, SelectionStrategy};
use jxp_core::{CombineMode, JxpConfig, MergeMode};
use jxp_webgraph::generators::{amazon_2005, web_crawl_2005, DatasetPreset};
use std::fmt::Write as _;

/// Resolve a dataset preset by name ("amazon" / "web").
pub fn preset_by_name(name: &str) -> DatasetPreset {
    match name {
        "amazon" => amazon_2005(),
        "web" => web_crawl_2005(),
        other => panic!("unknown dataset {other:?}"),
    }
}

/// Figures 6/7: full vs light-weight merging (both with score averaging,
/// random meetings).
pub fn merging_comparison(ctx: &ExperimentCtx, dataset: &str) {
    let fig = if dataset == "amazon" { 6 } else { 7 };
    println!(
        "== Figure {fig}: merge-mode comparison, {dataset} (scale {}, {} meetings, top-{}) ==",
        ctx.scale, ctx.meetings, ctx.top_k
    );
    let ds = load_dataset(&preset_by_name(dataset), ctx.scale);
    let mut curves = Vec::new();
    for (label, merge) in [
        ("with merging (full, Algorithm 2)", MergeMode::Full),
        (
            "without merging (light-weight, §4.1)",
            MergeMode::LightWeight,
        ),
    ] {
        let cfg = JxpConfig {
            merge,
            combine: CombineMode::Average,
            ..JxpConfig::default()
        };
        let mut net = build_network(&ds, cfg, SelectionStrategy::Random, 6, ctx.threads);
        let samples = run_convergence(&mut net, &ds, ctx.meetings, ctx.sample_every, ctx.top_k);
        print_samples(label, &samples);
        let suffix = if merge == MergeMode::Full {
            "full"
        } else {
            "light"
        };
        ctx.write_csv(
            &format!("fig0{fig}_{dataset}_{suffix}.csv"),
            &samples_to_csv(&samples),
        );
        curves.push((label, samples));
    }
    ctx.write_figure(
        &format!("fig0{fig}_{dataset}.svg"),
        &format!("Figure {fig}: merging procedures ({dataset})"),
        "Spearman footrule (top-k)",
        &[(curves[0].0, &curves[0].1), (curves[1].0, &curves[1].1)],
        |p| p.footrule,
    );
    let finals = [
        curves[0].1.last().unwrap().clone(),
        curves[1].1.last().unwrap().clone(),
    ];
    println!("\nShape check vs paper (Fig. {fig}): light-weight tracks full merging —");
    println!(
        "final footrule: full {:.4} vs light-weight {:.4}; final linear error: {:.3e} vs {:.3e}",
        finals[0].footrule, finals[1].footrule, finals[0].linear_error, finals[1].linear_error
    );
    assert!(
        (finals[1].footrule - finals[0].footrule).abs() < 0.1,
        "light-weight merging diverged from full merging"
    );
}

/// Figure 8: score-combination comparison (averaging + eq. 2 re-weighting
/// vs take-the-bigger + eq. 3), light-weight merging, both datasets.
pub fn combine_comparison(ctx: &ExperimentCtx, dataset: &str) {
    println!(
        "== Figure 8 ({dataset}): score combination (scale {}, {} meetings, top-{}) ==",
        ctx.scale, ctx.meetings, ctx.top_k
    );
    let ds = load_dataset(&preset_by_name(dataset), ctx.scale);
    let mut curves = Vec::new();
    for (label, combine) in [
        ("averaging (baseline, eq. 2)", CombineMode::Average),
        ("taking bigger score (§4.2, eq. 3)", CombineMode::TakeMax),
    ] {
        let cfg = JxpConfig {
            merge: MergeMode::LightWeight,
            combine,
            ..JxpConfig::default()
        };
        let mut net = build_network(&ds, cfg, SelectionStrategy::Random, 8, ctx.threads);
        let samples = run_convergence(&mut net, &ds, ctx.meetings, ctx.sample_every, ctx.top_k);
        print_samples(label, &samples);
        let suffix = if combine == CombineMode::Average {
            "avg"
        } else {
            "max"
        };
        ctx.write_csv(
            &format!("fig08_{dataset}_{suffix}.csv"),
            &samples_to_csv(&samples),
        );
        curves.push((label, samples));
    }
    ctx.write_figure(
        &format!("fig08_{dataset}.svg"),
        &format!("Figure 8: score combination ({dataset})"),
        "linear score error",
        &[(curves[0].0, &curves[0].1), (curves[1].0, &curves[1].1)],
        |p| p.linear_error,
    );
    let finals = [
        curves[0].1.last().unwrap().clone(),
        curves[1].1.last().unwrap().clone(),
    ];
    println!("\nShape check vs paper (Fig. 8): take-the-bigger converges faster —");
    println!(
        "final linear error: averaging {:.3e} vs take-max {:.3e}",
        finals[0].linear_error, finals[1].linear_error
    );
    assert!(
        finals[1].linear_error <= finals[0].linear_error * 1.1,
        "take-max should not be materially worse than averaging"
    );
}

/// Figures 9/10: peer selection with vs without the pre-meetings phase
/// (optimized JXP: light-weight merging + take-max).
pub fn selection_comparison(ctx: &ExperimentCtx, dataset: &str) {
    let fig = if dataset == "amazon" { 9 } else { 10 };
    println!(
        "== Figure {fig}: peer selection, {dataset} (scale {}, {} meetings, top-{}) ==",
        ctx.scale, ctx.meetings, ctx.top_k
    );
    let ds = load_dataset(&preset_by_name(dataset), ctx.scale);
    let mut per_strategy = Vec::new();
    const SEEDS: u64 = 3;
    for (label, strategy) in [
        ("without pre-meetings (random)", SelectionStrategy::Random),
        (
            "with pre-meetings (§4.3)",
            SelectionStrategy::PreMeetings(PreMeetingsConfig::default()),
        ),
    ] {
        // Average the curves over several simulator seeds (run in
        // parallel): a single run's footrule fluctuations are larger than
        // the strategy effect.
        let runs = crate::run_parallel(
            (0..SEEDS)
                .map(|seed| {
                    let ds = &ds;
                    let strategy = strategy.clone();
                    move || {
                        // Serial meeting rounds here: the seed sweep is
                        // the parallel axis, one run per core already.
                        let mut net =
                            build_network(ds, JxpConfig::optimized(), strategy, 9 + seed, 1);
                        run_convergence(&mut net, ds, ctx.meetings, ctx.sample_every, ctx.top_k)
                    }
                })
                .collect(),
        );
        let mut mean: Vec<crate::SamplePoint> = Vec::new();
        for samples in runs {
            if mean.is_empty() {
                mean = samples;
            } else {
                for (m, s) in mean.iter_mut().zip(samples) {
                    m.footrule += s.footrule;
                    m.linear_error += s.linear_error;
                    m.total_bytes += s.total_bytes;
                }
            }
        }
        for m in &mut mean {
            m.footrule /= SEEDS as f64;
            m.linear_error /= SEEDS as f64;
            m.total_bytes /= SEEDS;
        }
        print_samples(&format!("{label}, mean of {SEEDS} runs"), &mean);
        let suffix = match strategy {
            SelectionStrategy::Random => "random",
            SelectionStrategy::PreMeetings(_) => "premeet",
        };
        ctx.write_csv(
            &format!("fig{fig:02}_{dataset}_{suffix}.csv"),
            &samples_to_csv(&mean),
        );
        per_strategy.push((label, mean));
    }
    ctx.write_figure(
        &format!("fig{fig:02}_{dataset}.svg"),
        &format!("Figure {fig}: peer selection ({dataset}, mean of {SEEDS} runs)"),
        "Spearman footrule (top-k)",
        &[
            (per_strategy[0].0, &per_strategy[0].1),
            (per_strategy[1].0, &per_strategy[1].1),
        ],
        |p| p.footrule,
    );
    // The paper quotes fixed thresholds (0.2 / 0.1) that its curves cross
    // late; our curves sit lower at reduced scale, so pick the analogous
    // level dynamically — 15% above the worse of the two final values —
    // which both runs cross near the end of their descent.
    let threshold = per_strategy
        .iter()
        .map(|(_, s)| s.last().unwrap().footrule)
        .fold(0.0f64, f64::max)
        * 1.15;
    println!("\nFootrule-threshold economics (paper §6.2), threshold {threshold:.4}:");
    let mut summary = String::from("strategy,meetings_to_threshold,mbytes_to_threshold\n");
    for (label, samples) in &per_strategy {
        let m = meetings_to_reach(samples, threshold);
        let b = bytes_to_reach(samples, threshold);
        println!(
            "  {label}: footrule < {threshold} after {} meetings, {} MB",
            m.map_or("—".into(), |v| v.to_string()),
            b.map_or("—".into(), |v| format!("{:.1}", v as f64 / 1e6)),
        );
        let _ = writeln!(
            summary,
            "{label},{},{}",
            m.map_or(-1i64, |v| v as i64),
            b.map_or(-1i64, |v| v as i64)
        );
    }
    ctx.write_csv(&format!("fig{fig:02}_{dataset}_summary.csv"), &summary);
    let rand_final = per_strategy[0].1.last().unwrap().footrule;
    let pre_final = per_strategy[1].1.last().unwrap().footrule;
    println!(
        "\nShape check vs paper (Fig. {fig}): final footrule {pre_final:.4} (pre-meetings) vs {rand_final:.4} (random)."
    );
    println!("NOTE: the paper reports ~30% fewer meetings to threshold with pre-");
    println!("meetings on its 2005 crawls; on our synthetic collections the two");
    println!("strategies are statistically equivalent — random meetings already mix");
    println!("near-optimally because synthetic crawl fragments overlap homogeneously.");
    println!("See EXPERIMENTS.md for the analysis of this deviation.");
    assert!(
        pre_final < rand_final * 1.25,
        "pre-meetings regressed far beyond noise: {pre_final} vs {rand_final}"
    );
}

/// Figures 11/12: message-size quartiles per meeting, with and without the
/// pre-meetings phase.
pub fn msgsize(ctx: &ExperimentCtx, dataset: &str) {
    let fig = if dataset == "amazon" { 11 } else { 12 };
    println!(
        "== Figure {fig}: message sizes, {dataset} (scale {}, {} meetings) ==",
        ctx.scale, ctx.meetings
    );
    let ds = load_dataset(&preset_by_name(dataset), ctx.scale);
    for (label, strategy) in [
        ("without pre-meetings", SelectionStrategy::Random),
        (
            "with pre-meetings",
            SelectionStrategy::PreMeetings(PreMeetingsConfig::default()),
        ),
    ] {
        let mut net = build_network(
            &ds,
            JxpConfig::optimized(),
            strategy.clone(),
            11,
            ctx.threads,
        );
        net.run_parallel(ctx.meetings);
        let log = net.bandwidth();
        println!("\n  {label}: per-peer meeting number vs message KB (q1 / median / q3)");
        println!(
            "  {:>8} {:>10} {:>10} {:>10}",
            "meeting", "q1", "median", "q3"
        );
        let mut csv = String::from("meeting,q1_kb,median_kb,q3_kb\n");
        let horizon = log.max_meetings_per_peer().min(50);
        for k in 0..horizon {
            if let Some((q1, med, q3)) = log.quartiles_at_meeting(k) {
                let kb = |b: u64| b as f64 / 1024.0;
                if k % 5 == 0 || k + 1 == horizon {
                    println!(
                        "  {:>8} {:>10.1} {:>10.1} {:>10.1}",
                        k + 1,
                        kb(q1),
                        kb(med),
                        kb(q3)
                    );
                }
                let _ = writeln!(csv, "{},{:.2},{:.2},{:.2}", k + 1, kb(q1), kb(med), kb(q3));
            }
        }
        let suffix = match strategy {
            SelectionStrategy::Random => "random",
            SelectionStrategy::PreMeetings(_) => "premeet",
        };
        ctx.write_csv(&format!("fig{fig}_{dataset}_{suffix}.csv"), &csv);
        println!(
            "  totals: {:.1} MB on the wire, of which {:.2} MB pre-meeting synopses",
            log.total_bytes() as f64 / 1e6,
            log.premeeting_bytes() as f64 / 1e6
        );
    }
    println!("\nShape check vs paper (Fig. {fig}): message sizes are small (KB range)");
    println!("and grow with the peer's meeting count as world knowledge accumulates;");
    println!("the pre-meetings variant ships slightly larger messages (piggybacked MIPs).");
}

impl ExperimentCtx {
    /// The footrule thresholds the paper quotes in §6.2 (0.2 for Amazon,
    /// 0.1 for the Web crawl). At reduced scale the curves sit lower, so
    /// scale the threshold along with top-k.
    pub fn footrule_threshold(&self, dataset: &str) -> f32 {
        let base = if dataset == "amazon" { 0.2 } else { 0.1 };
        if self.scale >= 1.0 {
            base
        } else {
            (base * (0.3 + 0.7 * self.scale as f32)).max(0.02)
        }
    }
}
