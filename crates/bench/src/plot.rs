//! Minimal SVG line charts for the experiment figures.
//!
//! Every `figNN_*` binary writes its series both as CSV and as an SVG
//! line chart under `results/`, so "regenerate Figure 4" produces an
//! actual figure. Pure string assembly — no plotting dependency.

use std::fmt::Write as _;

/// One line of a chart.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// `(x, y)` points in data coordinates.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Convenience constructor.
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series {
            label: label.into(),
            points,
        }
    }
}

const WIDTH: f64 = 640.0;
const HEIGHT: f64 = 400.0;
const MARGIN_L: f64 = 70.0;
const MARGIN_R: f64 = 20.0;
const MARGIN_T: f64 = 40.0;
const MARGIN_B: f64 = 50.0;
const COLORS: [&str; 6] = [
    "#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#17becf",
];

fn fmt_tick(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 1000.0 || v.abs() < 0.01 {
        format!("{v:.1e}")
    } else {
        format!("{v:.3}")
            .trim_end_matches('0')
            .trim_end_matches('.')
            .to_string()
    }
}

/// Render a line chart to an SVG string.
///
/// # Panics
/// Panics if no series contains any point.
pub fn line_chart(title: &str, x_label: &str, y_label: &str, series: &[Series]) -> String {
    let all: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|s| s.points.iter().copied())
        .collect();
    assert!(!all.is_empty(), "cannot plot an empty chart");
    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &all {
        x_min = x_min.min(x);
        x_max = x_max.max(x);
        y_min = y_min.min(y);
        y_max = y_max.max(y);
    }
    // Zero-baseline for y when everything is non-negative (error curves).
    if y_min > 0.0 {
        y_min = 0.0;
    }
    if (x_max - x_min).abs() < f64::EPSILON {
        x_max = x_min + 1.0;
    }
    if (y_max - y_min).abs() < f64::EPSILON {
        y_max = y_min + 1.0;
    }
    let px = |x: f64| MARGIN_L + (x - x_min) / (x_max - x_min) * (WIDTH - MARGIN_L - MARGIN_R);
    let py =
        |y: f64| HEIGHT - MARGIN_B - (y - y_min) / (y_max - y_min) * (HEIGHT - MARGIN_T - MARGIN_B);

    let mut svg = String::new();
    let _ = write!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}" font-family="sans-serif" font-size="12">"#
    );
    let _ = write!(
        svg,
        r#"<rect width="{WIDTH}" height="{HEIGHT}" fill="white"/>"#
    );
    let _ = write!(
        svg,
        r#"<text x="{}" y="20" text-anchor="middle" font-size="15">{}</text>"#,
        WIDTH / 2.0,
        title
    );
    // Axes.
    let _ = write!(
        svg,
        r#"<line x1="{l}" y1="{b}" x2="{r}" y2="{b}" stroke="black"/><line x1="{l}" y1="{t}" x2="{l}" y2="{b}" stroke="black"/>"#,
        l = MARGIN_L,
        r = WIDTH - MARGIN_R,
        t = MARGIN_T,
        b = HEIGHT - MARGIN_B
    );
    // Ticks: 5 per axis.
    for i in 0..=4 {
        let fx = x_min + (x_max - x_min) * i as f64 / 4.0;
        let fy = y_min + (y_max - y_min) * i as f64 / 4.0;
        let _ = write!(
            svg,
            r#"<line x1="{x}" y1="{b}" x2="{x}" y2="{b2}" stroke="black"/><text x="{x}" y="{ty}" text-anchor="middle">{lab}</text>"#,
            x = px(fx),
            b = HEIGHT - MARGIN_B,
            b2 = HEIGHT - MARGIN_B + 5.0,
            ty = HEIGHT - MARGIN_B + 20.0,
            lab = fmt_tick(fx)
        );
        let _ = write!(
            svg,
            r#"<line x1="{l}" y1="{y}" x2="{l2}" y2="{y}" stroke="black"/><text x="{tx}" y="{y2}" text-anchor="end">{lab}</text>"#,
            l = MARGIN_L,
            l2 = MARGIN_L - 5.0,
            y = py(fy),
            tx = MARGIN_L - 8.0,
            y2 = py(fy) + 4.0,
            lab = fmt_tick(fy)
        );
    }
    // Axis labels.
    let _ = write!(
        svg,
        r#"<text x="{}" y="{}" text-anchor="middle">{}</text>"#,
        (MARGIN_L + WIDTH - MARGIN_R) / 2.0,
        HEIGHT - 10.0,
        x_label
    );
    let _ = write!(
        svg,
        r#"<text x="16" y="{}" text-anchor="middle" transform="rotate(-90 16 {})">{}</text>"#,
        HEIGHT / 2.0,
        HEIGHT / 2.0,
        y_label
    );
    // Series.
    for (i, s) in series.iter().enumerate() {
        let color = COLORS[i % COLORS.len()];
        let mut path = String::new();
        for &(x, y) in &s.points {
            let _ = write!(path, "{:.1},{:.1} ", px(x), py(y));
        }
        let _ = write!(
            svg,
            r#"<polyline points="{}" fill="none" stroke="{color}" stroke-width="1.8"/>"#,
            path.trim_end()
        );
        // Legend entry.
        let ly = MARGIN_T + 8.0 + i as f64 * 18.0;
        let _ = write!(
            svg,
            r#"<line x1="{x1}" y1="{ly}" x2="{x2}" y2="{ly}" stroke="{color}" stroke-width="2"/><text x="{tx}" y="{ty}">{label}</text>"#,
            x1 = WIDTH - MARGIN_R - 170.0,
            x2 = WIDTH - MARGIN_R - 145.0,
            tx = WIDTH - MARGIN_R - 140.0,
            ty = ly + 4.0,
            label = s.label
        );
    }
    svg.push_str("</svg>");
    svg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_well_formed_svg() {
        let s = vec![
            Series::new("a", vec![(0.0, 1.0), (10.0, 0.5), (20.0, 0.2)]),
            Series::new("b", vec![(0.0, 0.9), (10.0, 0.7), (20.0, 0.6)]),
        ];
        let svg = line_chart("Figure X", "meetings", "footrule", &s);
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert!(svg.contains("Figure X"));
        assert!(svg.contains("meetings"));
        assert!(svg.contains(">a</text>"));
        assert!(svg.contains(">b</text>"));
    }

    #[test]
    fn degenerate_ranges_do_not_divide_by_zero() {
        let s = vec![Series::new("flat", vec![(5.0, 3.0), (5.0, 3.0)])];
        let svg = line_chart("t", "x", "y", &s);
        assert!(!svg.contains("NaN"));
        assert!(!svg.contains("inf"));
    }

    #[test]
    fn tick_formatting() {
        assert_eq!(fmt_tick(0.0), "0");
        assert_eq!(fmt_tick(0.25), "0.25");
        assert_eq!(fmt_tick(1500.0), "1.5e3");
        assert_eq!(fmt_tick(0.0001), "1.0e-4");
    }

    #[test]
    #[should_panic(expected = "empty chart")]
    fn empty_chart_panics() {
        let _ = line_chart("t", "x", "y", &[Series::new("none", vec![])]);
    }
}
