//! Network dynamics — the paper's §5.3/§7 scenario, quantified.
//!
//! The paper claims (without experiments) that "JXP has been designed to
//! handle high dynamics, and the algorithms themselves can easily cope
//! with changes in the Web graph, repeated crawls, or peer churn". This
//! extension experiment tests the claim: the same meeting budget is run
//!
//! 1. on a **static** network (control),
//! 2. under **churn with cold rejoin** — a leaving peer loses all its JXP
//!    state, rejoining starts from scratch,
//! 3. under **churn with warm rejoin** — a leaving peer's state is saved
//!    with [`jxp_core::snapshot`] and restored when it rejoins,
//!
//! and reports the footrule trajectory of each condition.

use jxp_bench::{load_dataset, ExperimentCtx};
use jxp_core::{snapshot, JxpConfig};
use jxp_p2pnet::{Network, NetworkConfig};
use jxp_pagerank::metrics;
use jxp_webgraph::generators::amazon_2005;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use std::fmt::Write as _;

fn main() {
    let ctx = ExperimentCtx::from_env(1500);
    println!(
        "== Dynamics: churn with cold vs warm rejoin (scale {}, {} meetings, top-{}) ==",
        ctx.scale, ctx.meetings, ctx.top_k
    );
    let ds = load_dataset(&amazon_2005(), ctx.scale);
    let n = ds.cg.graph.num_nodes() as u64;
    let checkpoints = 10usize;
    let per_checkpoint = ctx.meetings / checkpoints;
    let mut csv = String::from("condition,meetings,footrule\n");
    let mut finals = Vec::new();

    for condition in ["static", "churn-cold", "churn-warm"] {
        let mut net = Network::new(
            ds.fragments.clone(),
            n,
            NetworkConfig {
                jxp: JxpConfig::optimized(),
                ..Default::default()
            },
            91,
        );
        let mut rng = StdRng::seed_from_u64(92);
        // Parked peers waiting to rejoin: either their snapshot (warm) or
        // just their fragment index into the dataset layout (cold).
        let mut parked_snapshots: VecDeque<Vec<u8>> = VecDeque::new();
        let mut parked_fragments: VecDeque<usize> = VecDeque::new();
        let mut leaves = 0u32;
        let mut rejoins = 0u32;

        print!("  {condition:<11}");
        let mut last = 0.0;
        for cp in 0..checkpoints {
            for _ in 0..per_checkpoint {
                net.step();
                if condition == "static" {
                    continue;
                }
                // One leave and one rejoin attempt per ~25 meetings.
                if rng.gen_bool(0.04) && net.num_peers() > 60 {
                    let victim = rng.gen_range(0..net.num_peers());
                    let peer = net.remove_peer(victim);
                    leaves += 1;
                    if condition == "churn-warm" {
                        parked_snapshots.push_back(snapshot::save(&peer).to_vec());
                    } else {
                        // Cold: remember only *which* crawl the user had.
                        parked_fragments.push_back(victim % ds.fragments.len());
                    }
                }
                if rng.gen_bool(0.04) {
                    if condition == "churn-warm" {
                        if let Some(bytes) = parked_snapshots.pop_front() {
                            let peer = snapshot::load(&bytes[..]).expect("own snapshot must load");
                            net.add_existing_peer(peer);
                            rejoins += 1;
                        }
                    } else if let Some(f) = parked_fragments.pop_front() {
                        net.add_peer(ds.fragments[f].clone());
                        rejoins += 1;
                    }
                }
            }
            let f = metrics::footrule_distance(&net.total_ranking(), &ds.truth_ranking, ctx.top_k);
            last = f;
            print!(" {f:.4}");
            let _ = writeln!(csv, "{condition},{},{f:.6}", (cp + 1) * per_checkpoint);
        }
        println!("   ({leaves} leaves, {rejoins} rejoins)");
        finals.push((condition, last));
    }
    ctx.write_csv("dynamics.csv", &csv);

    let by_name = |n: &str| finals.iter().find(|(c, _)| *c == n).unwrap().1;
    println!(
        "\nfinal footrule: static {:.4}, churn-cold {:.4}, churn-warm {:.4}",
        by_name("static"),
        by_name("churn-cold"),
        by_name("churn-warm")
    );
    println!("\nShape check vs paper (§5.3 claim): the network keeps converging under");
    println!("churn; restoring state on rejoin (warm) recovers most of the gap to the");
    println!("static control.");
    assert!(
        by_name("churn-cold") < 0.5,
        "network fell apart under churn"
    );
    assert!(
        by_name("churn-warm") <= by_name("churn-cold") * 1.5 + 0.02,
        "warm rejoin should not be much worse than cold"
    );
}
