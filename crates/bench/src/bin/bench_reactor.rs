//! Threads-vs-reactor transport benchmark: the same deterministic
//! node-disjoint meeting schedule driven twice over real localhost
//! sockets — once on the thread-per-connection TCP transport, once on
//! the `jxp-reactor` multiplexed transport — timing every meeting.
//!
//! Both modes execute identical rounds against fresh nodes, so the
//! final score hashes must match bit-for-bit (asserted); the comparison
//! is pure wall clock. The reactor run also reports its peak in-flight
//! submission count. Results print and land in `BENCH_reactor.json`
//! (`JXP_RESULTS` moves the directory).

use jxp_bench::ExperimentCtx;
use jxp_core::peer::JxpPeer;
use jxp_core::JxpConfig;
use jxp_node::{
    Exchange, FrameHandler, HandlerService, JxpNode, NodeId, ReactorTransport, RetryPolicy,
    TcpConfig, TcpServer, TcpTransport,
};
use jxp_reactor::{Reactor, ReactorConfig, ReactorMetrics};
use jxp_serve::contiguous_fragments;
use jxp_synopses::mips::MipsPermutations;
use jxp_webgraph::generators::amazon_2005;
use jxp_webgraph::Subgraph;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// Fragments requested from the dataset; trimmed to an even count so
/// the rotating node-disjoint schedule never pairs a node with itself.
const PEERS: usize = 64;

/// One pair per even index, targets rotating over the odd indices:
/// round `r` meets `2i` with `(2i + 1 + 2r) mod n`. With even `n` the
/// initiators are the even nodes and the targets the odd ones, so every
/// round is node-disjoint by construction.
fn schedule(n: usize, meetings: usize) -> Vec<Vec<(usize, NodeId)>> {
    let per_round = n / 2;
    let rounds = meetings.div_ceil(per_round);
    (0..rounds)
        .map(|r| {
            (0..per_round)
                .map(|i| (2 * i, ((2 * i + 1 + 2 * r) % n) as NodeId))
                .collect()
        })
        .collect()
}

fn build_nodes(
    fragments: &[Subgraph],
    n_total: u64,
    perms: &MipsPermutations,
) -> Vec<Arc<JxpNode>> {
    fragments
        .iter()
        .enumerate()
        .map(|(i, frag)| {
            let peer = JxpPeer::new(frag.clone(), n_total, JxpConfig::default());
            Arc::new(JxpNode::new(i as NodeId, peer, perms))
        })
        .collect()
}

/// FNV-1a over every node's final score bits, node order — the same
/// witness `run_cluster` reports.
fn score_hash(nodes: &[Arc<JxpNode>]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for node in nodes {
        node.with_peer(|peer| {
            for &score in peer.scores() {
                for byte in score.to_bits().to_le_bytes() {
                    hash ^= u64::from(byte);
                    hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
                }
            }
        });
    }
    hash
}

struct ModeResult {
    secs: f64,
    completed: usize,
    /// Per-meeting latency in milliseconds, schedule order.
    lat_ms: Vec<f64>,
    hash: u64,
    peak_inflight: Option<u64>,
}

/// Threaded control: `workers` blocking `meet` calls per round over the
/// thread-per-connection TCP transport.
fn run_threads(
    fragments: &[Subgraph],
    n_total: u64,
    perms: &MipsPermutations,
    rounds: &[Vec<(usize, NodeId)>],
    workers: usize,
) -> ModeResult {
    let nodes = build_nodes(fragments, n_total, perms);
    let transport = TcpTransport::new(TcpConfig::default());
    let mut servers = Vec::with_capacity(nodes.len());
    for (i, node) in nodes.iter().enumerate() {
        let server = TcpServer::spawn(Arc::clone(node) as Arc<dyn FrameHandler>)
            .expect("bind localhost TCP server");
        transport.add_route(i as NodeId, server.addr());
        servers.push(server);
    }
    let retry = RetryPolicy::default();
    let total: usize = rounds.iter().map(Vec::len).sum();
    let mut lat_ms = vec![0.0f64; total];
    let mut done = vec![false; total];
    let start = Instant::now();
    let mut base = 0usize;
    for round in rounds {
        let chunk = round.len().div_ceil(workers.max(1));
        let lat_round = &mut lat_ms[base..base + round.len()];
        let done_round = &mut done[base..base + round.len()];
        std::thread::scope(|s| {
            for ((tasks, lats), dones) in round
                .chunks(chunk)
                .zip(lat_round.chunks_mut(chunk))
                .zip(done_round.chunks_mut(chunk))
            {
                let nodes = &nodes;
                let transport = &transport;
                let retry = &retry;
                s.spawn(move || {
                    for ((&(initiator, target), lat), ok) in tasks.iter().zip(lats).zip(dones) {
                        let t0 = Instant::now();
                        *ok = nodes[initiator].meet(target, transport, retry).is_ok();
                        *lat = t0.elapsed().as_secs_f64() * 1e3;
                    }
                });
            }
        });
        base += round.len();
    }
    let secs = start.elapsed().as_secs_f64();
    ModeResult {
        secs,
        completed: done.iter().filter(|&&d| d).count(),
        lat_ms,
        hash: score_hash(&nodes),
        peak_inflight: None,
    }
}

/// Reactor mode: submit every meeting of a round up front, harvest in
/// schedule order — one driver thread, one loop thread, the whole round
/// in flight at once.
fn run_reactor(
    fragments: &[Subgraph],
    n_total: u64,
    perms: &MipsPermutations,
    rounds: &[Vec<(usize, NodeId)>],
) -> ModeResult {
    let nodes = build_nodes(fragments, n_total, perms);
    let reactor = Reactor::start(ReactorConfig::default(), ReactorMetrics::detached());
    let rt = ReactorTransport::new(reactor.handle());
    for (i, node) in nodes.iter().enumerate() {
        let service = Arc::new(HandlerService(Arc::clone(node) as Arc<dyn FrameHandler>));
        let addr = reactor
            .handle()
            .listen(service)
            .expect("bind reactor listener");
        rt.add_route(i as NodeId, addr);
    }
    let total: usize = rounds.iter().map(Vec::len).sum();
    let mut lat_ms = Vec::with_capacity(total);
    let mut completed = 0usize;
    let start = Instant::now();
    for round in rounds {
        let mut pending = Vec::with_capacity(round.len());
        for &(initiator, target) in round {
            let request = nodes[initiator].meet_begin();
            let t0 = Instant::now();
            let ticket = rt.submit(target, &request);
            pending.push((initiator, target, request, ticket, t0));
        }
        for (initiator, target, request, ticket, t0) in pending {
            let node = &nodes[initiator];
            // One resubmission on failure, mirroring the blocking
            // path's retry without timing noise from backoff sleeps.
            let reply = ticket.ok().and_then(|t| match t.wait_full() {
                Ok(x) => Some(x),
                Err(_) => rt
                    .submit(target, &request)
                    .ok()
                    .and_then(|t2| t2.wait_full().ok()),
            });
            match reply {
                Some((reply, bytes_sent, bytes_received)) => {
                    if node
                        .meet_finish(
                            Exchange {
                                reply,
                                bytes_sent,
                                bytes_received,
                            },
                            0,
                        )
                        .is_ok()
                    {
                        completed += 1;
                    }
                }
                None => node.meet_abort(0),
            }
            lat_ms.push(t0.elapsed().as_secs_f64() * 1e3);
        }
    }
    let secs = start.elapsed().as_secs_f64();
    ModeResult {
        secs,
        completed,
        lat_ms,
        hash: score_hash(&nodes),
        peak_inflight: Some(reactor.peak_inflight()),
    }
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

fn main() {
    let ctx = ExperimentCtx::from_env(1024);
    let workers = jxp_pagerank::par::resolve_threads(ctx.threads);
    let cg = amazon_2005().generate_scaled(ctx.scale);
    let n_total = cg.graph.num_nodes() as u64;
    let mut fragments = contiguous_fragments(&cg, PEERS);
    // Tiny datasets can yield fewer fragments than requested; the
    // rotating schedule needs an even peer count.
    if fragments.len() % 2 == 1 {
        fragments.pop();
    }
    let peers = fragments.len();
    assert!(peers >= 2, "dataset too small to split into peers");
    println!(
        "== Transport bench: threads vs reactor (scale {}, {} peers, {} meetings, {} workers) ==",
        ctx.scale, peers, ctx.meetings, workers
    );
    let perms = MipsPermutations::generate(64, 0x5a5a);
    let rounds = schedule(peers, ctx.meetings);
    let total: usize = rounds.iter().map(Vec::len).sum();
    println!(
        "dataset: {} pages, {} rounds of {} node-disjoint pairs ({} meetings)",
        n_total,
        rounds.len(),
        peers / 2,
        total
    );

    let modes: Vec<(&str, ModeResult)> = vec![
        (
            "threads",
            run_threads(&fragments, n_total, &perms, &rounds, workers),
        ),
        ("reactor", run_reactor(&fragments, n_total, &perms, &rounds)),
    ];

    println!(
        "{:>8} {:>10} {:>14} {:>10} {:>10} {:>18}",
        "mode", "seconds", "meetings/sec", "p50 ms", "p99 ms", "score hash"
    );
    for (name, r) in &modes {
        assert_eq!(
            r.completed, total,
            "{name}: {} of {total} meetings completed",
            r.completed
        );
        let mut sorted = r.lat_ms.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        println!(
            "{:>8} {:>10.3} {:>14.0} {:>10.3} {:>10.3} {:>18}",
            name,
            r.secs,
            total as f64 / r.secs,
            percentile(&sorted, 0.50),
            percentile(&sorted, 0.99),
            format!("{:016x}", r.hash)
        );
        if let Some(peak) = r.peak_inflight {
            println!("{:>8} peak in-flight meetings: {peak}", "");
        }
    }
    let threads_hash = modes[0].1.hash;
    for (name, r) in &modes {
        assert_eq!(
            r.hash, threads_hash,
            "score hash diverged on the {name} transport"
        );
    }
    println!("score hashes identical across transports ✓");

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"reactor\",");
    let _ = writeln!(
        json,
        "  \"workload\": \"rotating node-disjoint rounds, amazon\","
    );
    let _ = writeln!(json, "  \"scale\": {},", ctx.scale);
    let _ = writeln!(json, "  \"peers\": {peers},");
    let _ = writeln!(json, "  \"meetings\": {total},");
    let _ = writeln!(json, "  \"workers\": {workers},");
    let _ = writeln!(json, "  \"score_hash\": \"{threads_hash:016x}\",");
    let _ = writeln!(json, "  \"runs\": [");
    for (i, (name, r)) in modes.iter().enumerate() {
        let comma = if i + 1 == modes.len() { "" } else { "," };
        let mut sorted = r.lat_ms.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        let peak = r
            .peak_inflight
            .map(|p| format!(", \"peak_inflight\": {p}"))
            .unwrap_or_default();
        let _ = writeln!(
            json,
            "    {{\"transport\": \"{name}\", \"seconds\": {:.4}, \
             \"meetings_per_sec\": {:.1}, \"p50_ms\": {:.4}, \"p99_ms\": {:.4}{peak}}}{comma}",
            r.secs,
            total as f64 / r.secs,
            percentile(&sorted, 0.50),
            percentile(&sorted, 0.99),
        );
    }
    let _ = writeln!(json, "  ]");
    json.push_str("}\n");

    let path = std::env::var("JXP_RESULTS")
        .map(|d| std::path::PathBuf::from(d).join("BENCH_reactor.json"))
        .unwrap_or_else(|_| std::path::PathBuf::from("BENCH_reactor.json"));
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create results dir");
        }
    }
    std::fs::write(&path, &json).expect("write BENCH_reactor.json");
    println!("[json] {}", path.display());
}
