//! Figure 12: message sizes per meeting on the Web crawl.
//! See `fig11_msgsize_amazon` — same measurement, denser dataset.

use jxp_bench::drivers::msgsize;
use jxp_bench::ExperimentCtx;

fn main() {
    msgsize(&ExperimentCtx::from_env(1500), "web");
}
