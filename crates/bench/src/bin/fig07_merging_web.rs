//! Figure 7: full vs light-weight merging on the Web crawl.
//! See `fig06_merging_amazon` — same comparison, denser dataset.

use jxp_bench::drivers::merging_comparison;
use jxp_bench::ExperimentCtx;

fn main() {
    merging_comparison(&ExperimentCtx::from_env(1800), "web");
}
