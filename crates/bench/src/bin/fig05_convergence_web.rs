//! Figure 5: JXP accuracy vs number of meetings on the Web crawl.
//!
//! Same setup as Figure 4 (baseline JXP, random meetings, top-1000
//! metrics) on the denser Web-crawl collection. Paper observation: "at
//! 1000 meetings the footrule distance drops … below 0.2 for the Web
//! crawl" — the richer link structure converges faster than Amazon.

use jxp_bench::{
    build_network, load_dataset, print_samples, run_convergence, samples_to_csv, ExperimentCtx,
};
use jxp_core::selection::SelectionStrategy;
use jxp_core::JxpConfig;
use jxp_webgraph::generators::web_crawl_2005;

fn main() {
    let ctx = ExperimentCtx::from_env(1200);
    println!(
        "== Figure 5: JXP convergence, Web crawl (scale {}, {} meetings, top-{}) ==",
        ctx.scale, ctx.meetings, ctx.top_k
    );
    let ds = load_dataset(&web_crawl_2005(), ctx.scale);
    println!(
        "dataset: {} pages, {} links, 100 peers",
        ds.cg.graph.num_nodes(),
        ds.cg.graph.num_edges()
    );
    let mut net = build_network(
        &ds,
        JxpConfig::baseline(),
        SelectionStrategy::Random,
        5,
        ctx.threads,
    );
    let samples = run_convergence(&mut net, &ds, ctx.meetings, ctx.sample_every, ctx.top_k);
    print_samples(
        "baseline JXP (full merge, averaging, random meetings)",
        &samples,
    );
    ctx.write_csv("fig05_web.csv", &samples_to_csv(&samples));
    ctx.write_figure(
        "fig05_web_footrule.svg",
        "Figure 5(a): JXP convergence (web)",
        "Spearman footrule (top-k)",
        &[("baseline JXP", &samples)],
        |p| p.footrule,
    );
    ctx.write_figure(
        "fig05_web_error.svg",
        "Figure 5(b): linear score error (web)",
        "linear score error",
        &[("baseline JXP", &samples)],
        |p| p.linear_error,
    );

    let first = samples.first().unwrap();
    let last = samples.last().unwrap();
    println!("\nShape check vs paper (Fig. 5): error drops quickly with meetings —");
    println!(
        "footrule {:.3} → {:.3}, linear error {:.2e} → {:.2e}",
        first.footrule, last.footrule, first.linear_error, last.linear_error
    );
    assert!(
        last.footrule < first.footrule * 0.7,
        "footrule did not drop"
    );
    assert!(
        last.linear_error < first.linear_error,
        "score error did not drop"
    );
}
