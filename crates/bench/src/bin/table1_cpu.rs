//! Table 1: CPU time of the merging procedure, full vs light-weight.
//!
//! The paper measures, per peer, the average CPU milliseconds of one
//! merging procedure (one meeting with one other peer) and lists the three
//! biggest and three smallest peers (by locally-held pages). The absolute
//! numbers are 2005 hardware; the reproduction target is the *ratio* —
//! light-weight merging is markedly cheaper, most dramatically for small
//! peers (the paper's Peer 100: 269 ms → 17 ms).

use jxp_bench::{build_network, load_dataset, ExperimentCtx};
use jxp_core::selection::SelectionStrategy;
use jxp_core::{CombineMode, JxpConfig, MergeMode};
use jxp_webgraph::generators::{amazon_2005, web_crawl_2005};
use std::fmt::Write as _;
use std::time::Duration;

/// Per-peer accumulated merge time.
#[derive(Clone, Default)]
struct PeerCost {
    total: Duration,
    meetings: u64,
}

impl PeerCost {
    fn avg_micros(&self) -> f64 {
        if self.meetings == 0 {
            return 0.0;
        }
        self.total.as_micros() as f64 / self.meetings as f64
    }
}

fn measure(ds: &jxp_bench::Dataset, merge: MergeMode, meetings: usize) -> Vec<PeerCost> {
    let cfg = JxpConfig {
        merge,
        combine: CombineMode::Average,
        ..JxpConfig::default()
    };
    // Serial stepping: this experiment times each merge individually, so
    // concurrent meetings would contend for cores and skew the numbers.
    let mut net = build_network(ds, cfg, SelectionStrategy::Random, 21, 1);
    let mut costs = vec![PeerCost::default(); net.num_peers()];
    for _ in 0..meetings {
        let rec = net.step();
        let a = &mut costs[rec.initiator];
        a.total += rec.stats.merge_time_a;
        a.meetings += 1;
        let b = &mut costs[rec.partner];
        b.total += rec.stats.merge_time_b;
        b.meetings += 1;
    }
    costs
}

fn main() {
    let ctx = ExperimentCtx::from_env(1500);
    println!(
        "== Table 1: merge CPU time per meeting (scale {}, {} meetings/mode) ==",
        ctx.scale, ctx.meetings
    );
    let mut csv = String::from("dataset,peer_rank,pages,full_us,light_us,speedup\n");
    for preset in [amazon_2005(), web_crawl_2005()] {
        let ds = load_dataset(&preset, ctx.scale);
        println!(
            "\n[{}] {} pages, {} peers",
            ds.name,
            ds.cg.graph.num_nodes(),
            ds.fragments.len()
        );
        let full = measure(&ds, MergeMode::Full, ctx.meetings);
        let light = measure(&ds, MergeMode::LightWeight, ctx.meetings);
        // Sort peers by local fragment size, descending (the paper's
        // "peers were sorted in decreasing order according to their
        // numbers of locally held pages").
        let mut order: Vec<usize> = (0..ds.fragments.len()).collect();
        order.sort_by_key(|&p| std::cmp::Reverse(ds.fragments[p].num_pages()));
        println!(
            "  {:>9} {:>8} {:>14} {:>18} {:>9}",
            "peer", "pages", "full merge µs", "light-weight µs", "speedup"
        );
        let n = order.len();
        let shown: Vec<usize> = (0..3).chain(n - 3..n).collect();
        let mut speedups = Vec::new();
        for &rank in &shown {
            let p = order[rank];
            let (f, l) = (full[p].avg_micros(), light[p].avg_micros());
            let speedup = if l > 0.0 { f / l } else { f64::NAN };
            println!(
                "  Peer {:>4} {:>8} {:>14.0} {:>18.0} {:>8.1}x",
                rank + 1,
                ds.fragments[p].num_pages(),
                f,
                l,
                speedup
            );
            let _ = writeln!(
                csv,
                "{},{},{},{:.0},{:.0},{:.2}",
                ds.name,
                rank + 1,
                ds.fragments[p].num_pages(),
                f,
                l,
                speedup
            );
            speedups.push(speedup);
        }
        // Network-wide averages for the shape check.
        let avg = |v: &[PeerCost]| {
            let (t, m): (f64, u64) = v.iter().fold((0.0, 0), |(t, m), c| {
                (t + c.total.as_micros() as f64, m + c.meetings)
            });
            t / m.max(1) as f64
        };
        let (af, al) = (avg(&full), avg(&light));
        println!(
            "  network average: full {af:.0} µs vs light-weight {al:.0} µs ({:.1}x)",
            af / al
        );
        assert!(
            af > al,
            "[{}] light-weight merging must be cheaper on average (full {af:.0} µs vs light {al:.0} µs)",
            ds.name
        );
    }
    ctx.write_csv("table1_cpu.csv", &csv);
    println!("\nShape check vs paper (Table 1): light-weight merging is significantly");
    println!("cheaper for every peer, with the largest relative gains for small peers.");
}
