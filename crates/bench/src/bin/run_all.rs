//! Regenerate every table and figure of the paper in one go.
//!
//! Runs the sibling experiment binaries in paper order, inheriting the
//! `JXP_SCALE` / `JXP_MEETINGS` / `JXP_TOPK` environment. Exits non-zero
//! if any experiment fails its shape check.

use std::process::Command;

const EXPERIMENTS: &[&str] = &[
    "fig03_indegree",
    "fig04_convergence_amazon",
    "fig05_convergence_web",
    "fig06_merging_amazon",
    "fig07_merging_web",
    "table1_cpu",
    "fig08_combine",
    "fig09_selection_amazon",
    "fig10_selection_web",
    "fig11_msgsize_amazon",
    "fig12_msgsize_web",
    "table2_search",
    "baselines",
    "dynamics",
    "ablation",
];

fn main() {
    let me = std::env::current_exe().expect("own path");
    let dir = me.parent().expect("bin dir");
    let mut failures = Vec::new();
    for name in EXPERIMENTS {
        println!("\n=============================================================");
        println!("### {name}");
        println!("=============================================================");
        let status = Command::new(dir.join(name))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {name}: {e}"));
        if !status.success() {
            eprintln!("!!! {name} FAILED ({status})");
            failures.push(*name);
        }
    }
    println!("\n=============================================================");
    if failures.is_empty() {
        println!(
            "All {} experiments completed with passing shape checks.",
            EXPERIMENTS.len()
        );
    } else {
        println!("{} experiment(s) failed: {failures:?}", failures.len());
        std::process::exit(1);
    }
}
