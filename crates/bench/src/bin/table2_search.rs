//! Table 2: precision@10 of P2P search with and without JXP authority.
//!
//! The §6.3 Minerva experiment: 40 peers built from the 10 category sets
//! of the Web collection (each category split into 4 fragments; every peer
//! hosts 3 of the 4 → high same-topic overlap), 15 popular Web queries,
//! merged results ranked by (1) plain tf·idf and (2)
//! `0.6·tf·idf + 0.4·JXP`. The paper: "the standard tf*idf ranking
//! achieved a precision of 40%, whereas the combined tf*idf/JXP ranking
//! was able to increase precision to 57%".
//!
//! The 2005 document contents and manual assessments are unavailable; the
//! synthetic corpus embeds authority-correlated relevance (DESIGN.md §2).

use jxp_bench::{load_dataset, ExperimentCtx};
use jxp_core::selection::SelectionStrategy;
use jxp_core::JxpConfig;
use jxp_minerva::eval::{averages, table2};
use jxp_minerva::fusion::{PAPER_JXP_WEIGHT, PAPER_TFIDF_WEIGHT};
use jxp_minerva::{Corpus, CorpusParams, PeerIndex};
use jxp_p2pnet::assign::minerva_fragments;
use jxp_p2pnet::{Network, NetworkConfig};
use jxp_webgraph::generators::web_crawl_2005;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;

fn main() {
    let ctx = ExperimentCtx::from_env(1200);
    println!(
        "== Table 2: P2P search precision (scale {}, {} JXP meetings) ==",
        ctx.scale, ctx.meetings
    );
    let ds = load_dataset(&web_crawl_2005(), ctx.scale);
    let fragments = minerva_fragments(&ds.cg, 4, &mut StdRng::seed_from_u64(63));
    println!(
        "collection: {} documents, {} links, {} peers (10 categories × 4 fragments, each hosting 3)",
        ds.cg.graph.num_nodes(),
        ds.cg.graph.num_edges(),
        fragments.len()
    );

    // Run JXP over the Minerva peers so the authority scores come from the
    // actual P2P computation, not the centralized oracle.
    let mut net = Network::new(
        fragments.clone(),
        ds.cg.graph.num_nodes() as u64,
        NetworkConfig {
            jxp: JxpConfig::optimized(),
            strategy: SelectionStrategy::Random,
            ..Default::default()
        },
        64,
    );
    net.run(ctx.meetings);
    let jxp_ranking = net.total_ranking();

    // Corpus, indexes, queries.
    let corpus = Corpus::generate(
        &ds.cg,
        &ds.truth,
        CorpusParams::default(),
        &mut StdRng::seed_from_u64(65),
    );
    let indexes: Vec<PeerIndex> = fragments
        .iter()
        .map(|f| PeerIndex::build(f, &corpus))
        .collect();
    let queries = corpus.make_queries(15, &mut StdRng::seed_from_u64(66));

    let rows = table2(
        &corpus,
        &indexes,
        &jxp_ranking,
        &queries,
        6,  // route each query to the 6 most promising peers
        50, // top-50 from each
        10, // precision@10
        (PAPER_TFIDF_WEIGHT, PAPER_JXP_WEIGHT),
    );
    println!(
        "\n  {:<14} {:>8} {:>22}",
        "Query", "tf*idf", "0.6 tf*idf + 0.4 JXP"
    );
    let mut csv = String::from("query,tfidf_p10,fused_p10\n");
    for r in &rows {
        println!(
            "  {:<14} {:>7.0}% {:>21.0}%",
            r.query,
            r.tfidf_precision * 100.0,
            r.fused_precision * 100.0
        );
        let _ = writeln!(
            csv,
            "{},{:.2},{:.2}",
            r.query, r.tfidf_precision, r.fused_precision
        );
    }
    let (t, f) = averages(&rows);
    println!(
        "  {:<14} {:>7.0}% {:>21.0}%",
        "Average",
        t * 100.0,
        f * 100.0
    );
    let _ = writeln!(csv, "average,{t:.3},{f:.3}");
    ctx.write_csv("table2_search.csv", &csv);

    println!("\nShape check vs paper (Table 2): the combined ranking beats plain");
    println!("tf·idf on average (paper: 40% → 57%).");
    assert!(
        f > t,
        "fused ranking ({f:.3}) must beat plain tf·idf ({t:.3}) on average"
    );
}
