//! Ablations beyond the paper's figures: which design choices matter?
//!
//! 1. **Mode grid** — all four (merge × combine) combinations on one
//!    dataset, isolating the contribution of each §4 optimization.
//! 2. **N sensitivity** — JXP assumes the global page count `N` is
//!    "known or can be estimated with decent accuracy" (§3); this ablation
//!    quantifies "decent": peers run with N misestimated by ±50% and with
//!    the gossip-based FM estimate, vs the exact count.
//! 3. **MIPs dimensionality** — how small can the §4.3 synopses be before
//!    the pre-meetings strategy stops helping?

use jxp_bench::{build_network, load_dataset, run_convergence, samples_to_csv, ExperimentCtx};
use jxp_core::selection::{PreMeetingsConfig, SelectionStrategy};
use jxp_core::{CombineMode, JxpConfig, MergeMode};
use jxp_p2pnet::{Network, NetworkConfig};
use jxp_webgraph::generators::amazon_2005;
use std::fmt::Write as _;

fn main() {
    let ctx = ExperimentCtx::from_env(1200);
    println!(
        "== Ablations (scale {}, {} meetings, top-{}) ==",
        ctx.scale, ctx.meetings, ctx.top_k
    );
    let ds = load_dataset(&amazon_2005(), ctx.scale);

    // --- 1. merge × combine grid -------------------------------------
    println!("\n[1] merge × combine grid (final footrule / linear error):");
    let mut csv = String::from("merge,combine,footrule,linear_error\n");
    for merge in [MergeMode::Full, MergeMode::LightWeight] {
        for combine in [CombineMode::Average, CombineMode::TakeMax] {
            let cfg = JxpConfig {
                merge,
                combine,
                ..JxpConfig::default()
            };
            let mut net = build_network(&ds, cfg, SelectionStrategy::Random, 31, ctx.threads);
            let samples =
                run_convergence(&mut net, &ds, ctx.meetings, ctx.meetings.max(1), ctx.top_k);
            let last = samples.last().unwrap();
            println!(
                "  {:<12} + {:<8} → footrule {:.4}, error {:.3e}",
                format!("{merge:?}"),
                format!("{combine:?}"),
                last.footrule,
                last.linear_error
            );
            let _ = writeln!(
                csv,
                "{merge:?},{combine:?},{:.6},{:.3e}",
                last.footrule, last.linear_error
            );
        }
    }
    ctx.write_csv("ablation_grid.csv", &csv);

    // --- 2. N sensitivity ---------------------------------------------
    println!("\n[2] sensitivity to the global page count N:");
    let n_true = ds.cg.graph.num_nodes() as u64;
    let mut csv = String::from("n_mode,footrule,linear_error\n");
    let mut run_with = |label: &str, config: NetworkConfig, n: u64| {
        let mut net = Network::new(ds.fragments.clone(), n, config, 33);
        let samples = run_convergence(&mut net, &ds, ctx.meetings, ctx.meetings.max(1), ctx.top_k);
        let last = samples.last().unwrap().clone();
        println!(
            "  {label:<22} → footrule {:.4}, error {:.3e}",
            last.footrule, last.linear_error
        );
        let _ = writeln!(
            csv,
            "{label},{:.6},{:.3e}",
            last.footrule, last.linear_error
        );
        last
    };
    let base_cfg = || NetworkConfig::default();
    let exact = run_with("exact N", base_cfg(), n_true);
    run_with("N overestimated 2x", base_cfg(), n_true * 2);
    run_with("N underestimated 2x", base_cfg(), (n_true / 2).max(1));
    let gossip_cfg = NetworkConfig {
        estimate_n: true,
        ..Default::default()
    };
    let gossip = run_with("gossip-estimated N", gossip_cfg, 0);
    ctx.write_csv("ablation_n.csv", &csv);
    assert!(
        gossip.footrule < exact.footrule + 0.15,
        "gossip N estimation should be competitive with exact N"
    );

    // --- 3. MIPs dimensionality ---------------------------------------
    println!("\n[3] pre-meetings quality vs MIPs vector size:");
    let mut csv = String::from("mips_dims,footrule,linear_error,total_mb\n");
    for dims in [8usize, 32, 128] {
        let config = NetworkConfig {
            strategy: SelectionStrategy::PreMeetings(PreMeetingsConfig::default()),
            mips_dims: dims,
            ..Default::default()
        };
        let mut net = Network::new(ds.fragments.clone(), n_true, config, 35);
        let samples = run_convergence(&mut net, &ds, ctx.meetings, ctx.meetings.max(1), ctx.top_k);
        let last = samples.last().unwrap();
        println!(
            "  {dims:>4} permutations → footrule {:.4}, error {:.3e}, {:.1} MB",
            last.footrule,
            last.linear_error,
            last.total_bytes as f64 / 1e6
        );
        let _ = writeln!(
            csv,
            "{dims},{:.6},{:.3e},{:.2}",
            last.footrule,
            last.linear_error,
            last.total_bytes as f64 / 1e6
        );
    }
    ctx.write_csv("ablation_mips.csv", &csv);
    let _ = samples_to_csv; // (referenced by other binaries)
}
