//! Figure 8: combining score lists — averaging vs taking the bigger score.
//!
//! §4.2: because JXP scores never overestimate the true PageRank
//! (Theorem 5.3), taking the max of two peers' opinions is safe and uses
//! the tighter bound, so "authority scores converge faster to the global
//! PR values". Panels (a) Amazon and (b) Web crawl plot the linear score
//! error for both combination rules under light-weight merging.

use jxp_bench::drivers::combine_comparison;
use jxp_bench::ExperimentCtx;

fn main() {
    let ctx = ExperimentCtx::from_env(1800);
    combine_comparison(&ctx, "amazon");
    println!();
    combine_comparison(&ctx, "web");
}
