//! Serial-vs-parallel wall clock of the round-based meeting engine on
//! the Figure 4 workload (baseline JXP, Amazon collection, 100 peers,
//! random meetings).
//!
//! For each thread count the run executes the *identical* meeting
//! schedule — the engine's results are bit-identical for every worker
//! count, which this binary also verifies via a score hash — so the
//! comparison is pure wall clock. Results are printed and written to
//! `BENCH_parallel.json` in the current directory (`JXP_RESULTS` moves
//! it next to the CSV artifacts instead).
//!
//! **Honesty rule:** a run with more worker threads than the host has
//! cores measures timeslicing, not parallelism. Such runs still execute
//! (the determinism check is thread-count independent and still
//! valuable) but are marked `"valid": false` in the JSON, print no
//! speedup, and never participate in the speedup gate. The committed
//! `BENCH_parallel.json` must come from a host whose `host_cores` covers
//! the sweep — CI enforces this on a multi-core runner.

use jxp_bench::{build_network, load_dataset, score_hash, ExperimentCtx};
use jxp_core::selection::SelectionStrategy;
use jxp_core::JxpConfig;
use jxp_telemetry::TelemetryHub;
use jxp_webgraph::generators::amazon_2005;
use std::fmt::Write as _;
use std::time::Instant;

fn main() {
    let ctx = ExperimentCtx::from_env(1200);
    // JXP_METRICS=1 attaches a telemetry hub to every run; the score
    // hash must not move (CI diffs it against a metrics-off run).
    let metrics_on = std::env::var("JXP_METRICS").is_ok_and(|v| !v.is_empty() && v != "0");
    println!(
        "== Parallel meeting engine: fig04 workload (scale {}, {} meetings{}) ==",
        ctx.scale,
        ctx.meetings,
        if metrics_on { ", telemetry on" } else { "" }
    );
    let ds = load_dataset(&amazon_2005(), ctx.scale);
    println!(
        "dataset: {} pages, {} links, {} peers",
        ds.cg.graph.num_nodes(),
        ds.cg.graph.num_edges(),
        ds.fragments.len()
    );

    let available = std::thread::available_parallelism().map_or(1, |n| n.get());
    // JXP_THREADS pins the sweep to {1, N} (CI uses this to produce a
    // serial-only artifact); unset/0 sweeps 1, 2, 4 and all cores.
    let mut thread_counts = if ctx.threads != 0 {
        vec![1usize, ctx.threads]
    } else {
        let mut t = vec![1usize, 2, 4];
        if !t.contains(&available) {
            t.push(available);
        }
        t.retain(|&t| t <= available.max(4));
        t
    };
    thread_counts.dedup();

    println!(
        "{:>8} {:>10} {:>9} {:>7} {:>18}",
        "threads", "seconds", "speedup", "rounds", "score hash"
    );
    struct Run {
        threads: usize,
        secs: f64,
        rounds: u64,
        hash: u64,
        valid: bool,
    }
    let mut results: Vec<Run> = Vec::new();
    let mut serial_secs = 0.0f64;
    for &threads in &thread_counts {
        let valid = threads <= available;
        if !valid {
            eprintln!(
                "warning: {threads} threads oversubscribe this {available}-core host — \
                 timing measures timeslicing, not parallelism; run marked invalid"
            );
        }
        let mut net = build_network(
            &ds,
            JxpConfig::baseline(),
            SelectionStrategy::Random,
            4,
            threads,
        );
        if metrics_on {
            net.attach_telemetry(TelemetryHub::shared());
        }
        let start = Instant::now();
        let report = net.run_parallel(ctx.meetings);
        let secs = start.elapsed().as_secs_f64();
        if threads == 1 {
            serial_secs = secs;
        }
        let hash = score_hash(&net);
        // No speedup figure for oversubscribed runs: printing one would
        // be the exact lie this flag exists to prevent.
        let speedup = if valid {
            format!("{:>8.2}x", serial_secs / secs)
        } else {
            format!("{:>9}", "invalid")
        };
        println!(
            "{:>8} {:>10.3} {speedup} {:>7} {:>18}",
            threads,
            secs,
            report.rounds,
            format!("{hash:016x}")
        );
        results.push(Run {
            threads,
            secs,
            rounds: report.rounds,
            hash,
            valid,
        });
    }

    let baseline_hash = results[0].hash;
    for run in &results {
        assert_eq!(
            run.hash, baseline_hash,
            "scores diverged at {} threads — the engine lost determinism",
            run.threads
        );
    }
    println!("score hashes identical across all thread counts ✓");

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"workload\": \"fig04 baseline JXP, amazon\",");
    let _ = writeln!(json, "  \"host_cores\": {available},");
    let _ = writeln!(json, "  \"scale\": {},", ctx.scale);
    let _ = writeln!(json, "  \"meetings\": {},", ctx.meetings);
    let _ = writeln!(json, "  \"peers\": {},", ds.fragments.len());
    let _ = writeln!(json, "  \"telemetry\": {metrics_on},");
    let _ = writeln!(json, "  \"score_hash\": \"{baseline_hash:016x}\",");
    let _ = writeln!(json, "  \"runs\": [");
    for (i, run) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        // `speedup` is only present on valid runs; consumers must treat
        // its absence as "not measurable on this host".
        let speedup = if run.valid {
            format!(", \"speedup\": {:.3}", serial_secs / run.secs)
        } else {
            String::new()
        };
        let _ = writeln!(
            json,
            "    {{\"threads\": {}, \"seconds\": {:.4}, \"valid\": {}{speedup}, \
             \"rounds\": {}}}{comma}",
            run.threads, run.secs, run.valid, run.rounds
        );
    }
    let _ = writeln!(json, "  ]");
    json.push_str("}\n");

    let path = std::env::var("JXP_RESULTS")
        .map(|d| std::path::PathBuf::from(d).join("BENCH_parallel.json"))
        .unwrap_or_else(|_| std::path::PathBuf::from("BENCH_parallel.json"));
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create results dir");
        }
    }
    std::fs::write(&path, &json).expect("write BENCH_parallel.json");
    println!("[json] {}", path.display());

    if let Some(four) = results.iter().find(|r| r.threads == 4 && r.valid) {
        let speedup = serial_secs / four.secs;
        println!("speedup at 4 threads: {speedup:.2}x");
        // Smoke floor for any multi-core host; the ≥2.0x release gate
        // is asserted from the JSON by the CI parallel-bench job.
        assert!(
            speedup >= 1.5,
            "expected parallel speedup at 4 threads, measured {speedup:.2}x"
        );
    } else if available < 4 {
        println!("host has {available} core(s): no valid 4-thread run, speedup gate skipped");
    }
}
