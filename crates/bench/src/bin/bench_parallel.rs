//! Serial-vs-parallel wall clock of the round-based meeting engine on
//! the Figure 4 workload (baseline JXP, Amazon collection, 100 peers,
//! random meetings).
//!
//! For each thread count the run executes the *identical* meeting
//! schedule — the engine's results are bit-identical for every worker
//! count, which this binary also verifies via a score hash — so the
//! comparison is pure wall clock. Results are printed and written to
//! `BENCH_parallel.json` in the current directory (`JXP_RESULTS` moves
//! it next to the CSV artifacts instead).

use jxp_bench::{build_network, load_dataset, score_hash, ExperimentCtx};
use jxp_core::selection::SelectionStrategy;
use jxp_core::JxpConfig;
use jxp_telemetry::TelemetryHub;
use jxp_webgraph::generators::amazon_2005;
use std::fmt::Write as _;
use std::time::Instant;

fn main() {
    let ctx = ExperimentCtx::from_env(1200);
    // JXP_METRICS=1 attaches a telemetry hub to every run; the score
    // hash must not move (CI diffs it against a metrics-off run).
    let metrics_on = std::env::var("JXP_METRICS").is_ok_and(|v| !v.is_empty() && v != "0");
    println!(
        "== Parallel meeting engine: fig04 workload (scale {}, {} meetings{}) ==",
        ctx.scale,
        ctx.meetings,
        if metrics_on { ", telemetry on" } else { "" }
    );
    let ds = load_dataset(&amazon_2005(), ctx.scale);
    println!(
        "dataset: {} pages, {} links, {} peers",
        ds.cg.graph.num_nodes(),
        ds.cg.graph.num_edges(),
        ds.fragments.len()
    );

    let available = std::thread::available_parallelism().map_or(1, |n| n.get());
    // JXP_THREADS pins the sweep to {1, N} (CI uses this to produce a
    // serial-only artifact); unset/0 sweeps 1, 2, 4 and all cores.
    let mut thread_counts = if ctx.threads != 0 {
        vec![1usize, ctx.threads]
    } else {
        let mut t = vec![1usize, 2, 4];
        if !t.contains(&available) {
            t.push(available);
        }
        t.retain(|&t| t <= available.max(4));
        t
    };
    thread_counts.dedup();

    println!(
        "{:>8} {:>10} {:>9} {:>7} {:>18}",
        "threads", "seconds", "speedup", "rounds", "score hash"
    );
    let mut results: Vec<(usize, f64, u64, u64)> = Vec::new();
    let mut serial_secs = 0.0f64;
    for &threads in &thread_counts {
        let mut net = build_network(
            &ds,
            JxpConfig::baseline(),
            SelectionStrategy::Random,
            4,
            threads,
        );
        if metrics_on {
            net.attach_telemetry(TelemetryHub::shared());
        }
        let start = Instant::now();
        let report = net.run_parallel(ctx.meetings);
        let secs = start.elapsed().as_secs_f64();
        if threads == 1 {
            serial_secs = secs;
        }
        let hash = score_hash(&net);
        let speedup = serial_secs / secs;
        println!(
            "{:>8} {:>10.3} {:>8.2}x {:>7} {:>18}",
            threads,
            secs,
            speedup,
            report.rounds,
            format!("{hash:016x}")
        );
        results.push((threads, secs, report.rounds, hash));
    }

    let baseline_hash = results[0].3;
    for &(threads, _, _, hash) in &results {
        assert_eq!(
            hash, baseline_hash,
            "scores diverged at {threads} threads — the engine lost determinism"
        );
    }
    println!("score hashes identical across all thread counts ✓");

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"workload\": \"fig04 baseline JXP, amazon\",");
    let _ = writeln!(json, "  \"host_cores\": {available},");
    let _ = writeln!(json, "  \"scale\": {},", ctx.scale);
    let _ = writeln!(json, "  \"meetings\": {},", ctx.meetings);
    let _ = writeln!(json, "  \"peers\": {},", ds.fragments.len());
    let _ = writeln!(json, "  \"telemetry\": {metrics_on},");
    let _ = writeln!(json, "  \"score_hash\": \"{baseline_hash:016x}\",");
    let _ = writeln!(json, "  \"runs\": [");
    for (i, &(threads, secs, rounds, _)) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"threads\": {threads}, \"seconds\": {secs:.4}, \
             \"speedup\": {:.3}, \"rounds\": {rounds}}}{comma}",
            serial_secs / secs
        );
    }
    let _ = writeln!(json, "  ]");
    json.push_str("}\n");

    let path = std::env::var("JXP_RESULTS")
        .map(|d| std::path::PathBuf::from(d).join("BENCH_parallel.json"))
        .unwrap_or_else(|_| std::path::PathBuf::from("BENCH_parallel.json"));
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create results dir");
        }
    }
    std::fs::write(&path, &json).expect("write BENCH_parallel.json");
    println!("[json] {}", path.display());

    if let Some(&(_, four_secs, _, _)) = results.iter().find(|r| r.0 == 4) {
        let speedup = serial_secs / four_secs;
        println!("speedup at 4 threads: {speedup:.2}x");
        if available >= 4 {
            assert!(
                speedup >= 1.5,
                "expected parallel speedup at 4 threads, measured {speedup:.2}x"
            );
        }
    }
}
