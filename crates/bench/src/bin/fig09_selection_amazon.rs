//! Figure 9: peer-selection strategies on the Amazon collection.
//!
//! Random partner choice vs the §4.3 pre-meetings strategy (MIPs synopses,
//! cached good peers, candidate exchange). The paper: "to make the
//! footrule distance drop below 0.2 we needed a total of 1,770 meetings
//! without the pre-meetings phase. With the pre-meetings phase this number
//! was reduced to 1,250", and total bytes dropped ~20%.

use jxp_bench::drivers::selection_comparison;
use jxp_bench::ExperimentCtx;

fn main() {
    selection_comparison(&ExperimentCtx::from_env(1800), "amazon");
}
