//! The serving benchmark: query throughput, latency, cache behaviour
//! and retrieval quality of the `jxp-serve` front end.
//!
//! Runs [`jxp_serve::run_serve_experiment`] — a cluster of nodes
//! fronted by query handlers, driven by the seeded closed-loop load
//! generator while meetings execute, then measured after convergence —
//! and writes `BENCH_serve.json` to the current directory
//! (`JXP_RESULTS` moves it next to the other artifacts). Exits nonzero
//! if the paper's §6.3 claim fails, i.e. if fusing live JXP authority
//! into the ranking does *not* match or beat the tf·idf-only baseline
//! on precision@k.
//!
//! `JXP_SCALE` / `JXP_MEETINGS` / `JXP_THREADS` rescale the run like
//! every other experiment binary.

use jxp_bench::ExperimentCtx;
use jxp_serve::{render_bench_json, run_serve_experiment, ServeExperimentParams};

fn main() {
    let ctx = ExperimentCtx::from_env(320);
    let params = ServeExperimentParams {
        scale: ctx.scale,
        meetings: ctx.meetings,
        threads: if ctx.threads == 0 { 1 } else { ctx.threads },
        ..ServeExperimentParams::default()
    };
    println!(
        "== Serving benchmark: {} scale {}, {} peers, {} meetings, {} queries x {} passes ==",
        params.dataset.name,
        params.scale,
        params.peers,
        params.meetings,
        params.num_queries,
        params.repeats
    );
    let report = run_serve_experiment(&params);
    println!(
        "throughput {:.0} qps | p50 {:.3} ms | p99 {:.3} ms | cache hit rate {:.0}% | \
         {} failures",
        report.load.qps,
        report.load.p50_ms,
        report.load.p99_ms,
        report.load.cache_hit_rate * 100.0,
        report.load.failures
    );
    println!(
        "precision@{}: tf*idf {:.1}% | fused {:.1}% | centralized {:.1}% | overlap {:.1}%",
        params.k,
        report.tfidf_precision * 100.0,
        report.fused_precision * 100.0,
        report.centralized_precision * 100.0,
        report.centralized_overlap * 100.0
    );

    let json = render_bench_json(&report);
    let path = std::env::var("JXP_RESULTS")
        .map(|d| std::path::PathBuf::from(d).join("BENCH_serve.json"))
        .unwrap_or_else(|_| std::path::PathBuf::from("BENCH_serve.json"));
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create results dir");
        }
    }
    std::fs::write(&path, &json).expect("write BENCH_serve.json");
    println!("[json] {}", path.display());

    assert!(
        report.fusion_wins,
        "fused ranking lost to the tf*idf baseline: {:.4} < {:.4}",
        report.fused_precision, report.tfidf_precision
    );
    println!(
        "fusion wins: fused {:.1}% >= tf*idf {:.1}%",
        report.fused_precision * 100.0,
        report.tfidf_precision * 100.0
    );
}
