//! Figure 6: full vs light-weight merging on the Amazon collection.
//!
//! The paper's claim: "the results are almost unaffected if the graphs are
//! not merged" — the light-weight procedure of §4.1 tracks the accuracy of
//! the full Algorithm 2 merge while being far cheaper (Table 1 covers the
//! cost side).

use jxp_bench::drivers::merging_comparison;
use jxp_bench::ExperimentCtx;

fn main() {
    merging_comparison(&ExperimentCtx::from_env(1800), "amazon");
}
