//! Telemetry overhead: meeting throughput with metrics off vs on.
//!
//! Runs the Figure 4 workload (baseline JXP, Amazon collection, random
//! meetings) through the round-based engine twice — without telemetry
//! and with a hub attached (per-meeting counters, event ring, round
//! histograms all live) — taking the best of several repetitions per
//! configuration so scheduler noise doesn't masquerade as overhead.
//! Verifies the score hash is identical in both modes (telemetry is
//! observation-only) and reports the relative wall-clock cost against
//! the < 2% target. Results land in `BENCH_telemetry.json` in the
//! current directory (`JXP_RESULTS` moves it next to the CSV
//! artifacts).
//!
//! The default run is serial (`JXP_THREADS` overrides): one worker
//! maximizes counter updates per wall-second, making it the *worst*
//! case for instrumentation overhead — parallel rounds amortize the
//! serial accounting phase across more concurrent meeting work.

use jxp_bench::{build_network, load_dataset, score_hash, ExperimentCtx};
use jxp_core::selection::SelectionStrategy;
use jxp_core::JxpConfig;
use jxp_telemetry::TelemetryHub;
use jxp_webgraph::generators::amazon_2005;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

const REPS: usize = 5;
const TARGET_PERCENT: f64 = 2.0;

fn main() {
    let ctx = ExperimentCtx::from_env(600);
    let threads = if ctx.threads == 0 { 1 } else { ctx.threads };
    println!(
        "== Telemetry overhead: fig04 workload (scale {}, {} meetings, {} threads, best of {REPS}) ==",
        ctx.scale, ctx.meetings, threads
    );
    let ds = load_dataset(&amazon_2005(), ctx.scale);
    println!(
        "dataset: {} pages, {} links, {} peers",
        ds.cg.graph.num_nodes(),
        ds.cg.graph.num_edges(),
        ds.fragments.len()
    );

    let measure = |telemetry: bool| -> (f64, u64, u64) {
        let mut best = f64::INFINITY;
        let mut hash = 0u64;
        let mut counted = 0u64;
        for _ in 0..REPS {
            let mut net = build_network(
                &ds,
                JxpConfig::baseline(),
                SelectionStrategy::Random,
                4,
                threads,
            );
            let hub = telemetry.then(TelemetryHub::shared);
            if let Some(hub) = &hub {
                net.attach_telemetry(Arc::clone(hub));
            }
            let start = Instant::now();
            net.run_parallel(ctx.meetings);
            best = best.min(start.elapsed().as_secs_f64());
            hash = score_hash(&net);
            if let Some(hub) = &hub {
                counted = hub.snapshot().metrics.counters["jxp_sim_meetings_total"];
            }
        }
        (best, hash, counted)
    };

    let (off_secs, off_hash, _) = measure(false);
    let (on_secs, on_hash, counted) = measure(true);
    assert_eq!(
        off_hash, on_hash,
        "telemetry perturbed the meeting engine — scores diverged"
    );
    assert_eq!(
        counted, ctx.meetings as u64,
        "meeting counter disagrees with the requested budget"
    );
    println!("score hash identical with metrics off/on ✓ ({off_hash:016x})");

    let overhead = (on_secs - off_secs) / off_secs * 100.0;
    let throughput_off = ctx.meetings as f64 / off_secs;
    let throughput_on = ctx.meetings as f64 / on_secs;
    println!("{:>12} {:>10} {:>14}", "metrics", "seconds", "meetings/sec");
    println!("{:>12} {:>10.4} {:>14.1}", "off", off_secs, throughput_off);
    println!("{:>12} {:>10.4} {:>14.1}", "on", on_secs, throughput_on);
    println!("overhead: {overhead:+.2}% (target < {TARGET_PERCENT}%)");
    if overhead >= TARGET_PERCENT {
        // Wall-clock noise makes a hard assert flaky in shared CI
        // runners; the JSON artifact records the measurement instead.
        println!("WARNING: overhead above target — inspect BENCH_telemetry.json");
    }

    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"workload\": \"fig04 baseline JXP, amazon (run_parallel)\","
    );
    let _ = writeln!(json, "  \"scale\": {},", ctx.scale);
    let _ = writeln!(json, "  \"meetings\": {},", ctx.meetings);
    let _ = writeln!(json, "  \"peers\": {},", ds.fragments.len());
    let _ = writeln!(json, "  \"threads\": {threads},");
    let _ = writeln!(json, "  \"repetitions\": {REPS},");
    let _ = writeln!(json, "  \"score_hash\": \"{off_hash:016x}\",");
    let _ = writeln!(json, "  \"metrics_off_seconds\": {off_secs:.4},");
    let _ = writeln!(json, "  \"metrics_on_seconds\": {on_secs:.4},");
    let _ = writeln!(json, "  \"overhead_percent\": {overhead:.3},");
    let _ = writeln!(json, "  \"overhead_target_percent\": {TARGET_PERCENT}");
    json.push_str("}\n");

    let path = std::env::var("JXP_RESULTS")
        .map(|d| std::path::PathBuf::from(d).join("BENCH_telemetry.json"))
        .unwrap_or_else(|_| std::path::PathBuf::from("BENCH_telemetry.json"));
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create results dir");
        }
    }
    std::fs::write(&path, &json).expect("write BENCH_telemetry.json");
    println!("[json] {}", path.display());
}
