//! Figure 3: in-degree distributions of the two collections (log-log).
//!
//! The paper plots #pages vs in-degree for the Amazon data (3a) and the
//! Web crawl (3b) and observes that "the two distributions are close to a
//! power-law distribution". This binary regenerates both histograms and
//! reports the fitted log-log slope.

use jxp_bench::ExperimentCtx;
use jxp_webgraph::analysis::DegreeHistogram;
use jxp_webgraph::generators::{amazon_2005, web_crawl_2005};
use std::fmt::Write as _;

fn main() {
    let ctx = ExperimentCtx::from_env(0);
    println!(
        "== Figure 3: in-degree distributions (scale {}) ==",
        ctx.scale
    );
    for preset in [amazon_2005(), web_crawl_2005()] {
        let cg = if ctx.scale >= 1.0 {
            preset.generate()
        } else {
            preset.generate_scaled(ctx.scale)
        };
        let h = DegreeHistogram::indegree(&cg.graph);
        let slope = h.log_log_slope().unwrap_or(f64::NAN);
        println!(
            "\n[{}] {} pages, {} links, max in-degree {}, log-log slope {:.2}",
            preset.name,
            cg.graph.num_nodes(),
            cg.graph.num_edges(),
            h.max_degree(),
            slope
        );
        println!("  {:>9} {:>12}", "indegree", "#pages");
        // Log-spaced sample of the histogram, like reading points off the
        // paper's log-log plot.
        let mut csv = String::from("indegree,pages\n");
        let mut d = 1usize;
        while d <= h.max_degree() {
            let c = h.count(d);
            if c > 0 {
                println!("  {:>9} {:>12}", d, c);
            }
            let _ = writeln!(csv, "{d},{}", h.count(d));
            d = (d * 2).max(d + 1);
        }
        ctx.write_csv(&format!("fig03_{}.csv", preset.name), &csv);
        assert!(
            slope < -1.0,
            "in-degree distribution is not power-law-like (slope {slope})"
        );
    }
    println!("\nShape check vs paper: both collections show a straight descending");
    println!("log-log line (power law), matching Figure 3(a)/(b).");
}
