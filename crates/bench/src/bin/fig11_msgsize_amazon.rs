//! Figure 11: message sizes per meeting on the Amazon collection.
//!
//! Quartiles (over peers) of the bytes a peer ships at its k-th meeting,
//! with and without the pre-meetings phase. The paper: "JXP consumes
//! rather little network bandwidth, as the message sizes are small. […]
//! the pre-meetings phase causes only a small increase of the number of
//! transmitted bytes, since it requires the exchange of the min-wise
//! independent permutation vectors only."

use jxp_bench::drivers::msgsize;
use jxp_bench::ExperimentCtx;

fn main() {
    msgsize(&ExperimentCtx::from_env(1500), "amazon");
}
