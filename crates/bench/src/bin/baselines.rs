//! Related-work baselines vs JXP (paper §2).
//!
//! The paper argues JXP against three families of prior art; this binary
//! puts the implementations side by side on the same collection:
//!
//! * **BlockRank / ServerRank** (disjoint-partition distributed PR):
//!   accurate when the partition matches the block structure — but
//!   *inexpressible* for overlapping fragments, while JXP on the very same
//!   overlapping fragments keeps converging.
//! * **Chen et al. local estimation**: per-page accuracy vs the number of
//!   pages that must be fetched around the target — the recursive
//!   in-link-query burden §2.2 says a P2P network cannot afford.
//! * **OPIC**: centralized online importance, the fairness blueprint for
//!   Theorem 5.4.
//! * **HITS**: the other seminal link-analysis method, to show how far a
//!   non-PageRank authority notion lands from the PR ranking.

use jxp_bench::{build_network, load_dataset, ExperimentCtx};
use jxp_core::selection::SelectionStrategy;
use jxp_core::JxpConfig;
use jxp_pagerank::blockrank::block_pagerank;
use jxp_pagerank::chen_local::estimate_pagerank;
use jxp_pagerank::hits::{hits, HitsConfig};
use jxp_pagerank::metrics::{footrule_distance, top_k_overlap};
use jxp_pagerank::opic::{Opic, VisitPolicy};
use jxp_pagerank::{PageRankConfig, Ranking};
use jxp_webgraph::generators::amazon_2005;
use jxp_webgraph::PageId;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;

fn ranking_of(scores: &[f64]) -> Ranking {
    Ranking::from_scores(
        scores
            .iter()
            .enumerate()
            .map(|(i, &s)| (PageId(i as u32), s + i as f64 * 1e-15)),
    )
}

fn main() {
    let ctx = ExperimentCtx::from_env(1200);
    println!(
        "== Baselines vs JXP (scale {}, top-{}) ==",
        ctx.scale, ctx.top_k
    );
    let ds = load_dataset(&amazon_2005(), ctx.scale);
    let truth_ranking = &ds.truth_ranking;
    let n = ds.cg.graph.num_nodes();
    let mut csv = String::from("method,footrule,topk_overlap,note\n");
    let mut report = |name: &str, r: &Ranking, note: &str| {
        let f = footrule_distance(r, truth_ranking, ctx.top_k);
        let ov = top_k_overlap(r, truth_ranking, ctx.top_k);
        println!(
            "  {name:<28} footrule {f:.4}  top-{} overlap {:>5.1}%  {note}",
            ctx.top_k,
            ov * 100.0
        );
        let _ = writeln!(csv, "{name},{f:.6},{ov:.4},{note}");
        (f, ov)
    };

    // ---- JXP on arbitrarily overlapping fragments (its home turf).
    let mut net = build_network(
        &ds,
        JxpConfig::optimized(),
        SelectionStrategy::Random,
        77,
        ctx.threads,
    );
    net.run_parallel(ctx.meetings);
    let (jxp_f, _) = report(
        "JXP (overlapping fragments)",
        &net.total_ranking(),
        &format!("{} meetings", ctx.meetings),
    );

    // ---- BlockRank on the category partition (disjoint — its precondition).
    let block_of: Vec<u32> = ds.cg.category_of.iter().map(|&c| c as u32).collect();
    let block = block_pagerank(&ds.cg.graph, &block_of, &PageRankConfig::default());
    let (block_f, _) = report(
        "BlockRank (disjoint blocks)",
        &ranking_of(&block),
        "requires a disjoint partition",
    );

    // ---- OPIC with a visit budget comparable to JXP's PR work.
    let mut rng = StdRng::seed_from_u64(78);
    let mut opic = Opic::new(&ds.cg.graph, 0.15, VisitPolicy::Greedy);
    opic.run(&ds.cg.graph, 50 * n as u64, &mut rng);
    report(
        "OPIC (greedy, 50n visits)",
        &ranking_of(&opic.importance()),
        "centralized bookkeeping",
    );

    // ---- HITS authorities (a different authority notion altogether).
    let h = hits(&ds.cg.graph, &HitsConfig::default());
    report(
        "HITS authorities",
        &ranking_of(h.authorities()),
        "not a PageRank estimator",
    );

    // ---- Chen et al.: per-page cost/accuracy on the true top pages.
    println!("\n  Chen et al. local estimation of the top-20 pages:");
    println!(
        "  {:>7} {:>16} {:>16}",
        "radius", "mean rel. error", "mean pages fetched"
    );
    let cfg = PageRankConfig::default();
    let targets = truth_ranking.top_k(20).to_vec();
    for radius in [1usize, 2, 3] {
        let mut err = 0.0;
        let mut cost = 0usize;
        for &t in &targets {
            let est = estimate_pagerank(&ds.cg.graph, t, radius, &cfg);
            let truth_score = truth_ranking.score(t).unwrap();
            err += (est.score - truth_score).abs() / truth_score;
            cost += est.expanded_pages;
        }
        let (me, mc) = (err / targets.len() as f64, cost / targets.len());
        println!("  {radius:>7} {me:>16.3} {mc:>16}");
        let _ = writeln!(csv, "chen_radius_{radius},{me:.6},,mean pages {mc}");
    }
    ctx.write_csv("baselines.csv", &csv);

    println!("\nShape check vs paper (§2): JXP on overlapping fragments is at least");
    println!("as accurate as BlockRank on its required disjoint partition, without");
    println!("the disjointness constraint; Chen-style estimation needs hundreds of");
    println!("page fetches per single target page.");
    assert!(
        jxp_f <= block_f + 0.05,
        "JXP ({jxp_f}) should be competitive with BlockRank ({block_f})"
    );
}
