//! Figure 4: JXP accuracy vs number of meetings on the Amazon collection.
//!
//! Reproduces both panels — 4(a) Spearman's footrule distance and 4(b)
//! linear score error of the top-1000 pages as a function of the global
//! meeting count — for the baseline JXP of §3 (full merging, score
//! averaging, random meetings). The paper's headline observation: "already
//! at 1000 meetings the footrule distance drops below 0.3" (each of the
//! 100 peers having met ~10 others).

use jxp_bench::{
    build_network, load_dataset, print_samples, run_convergence, samples_to_csv, ExperimentCtx,
};
use jxp_core::selection::SelectionStrategy;
use jxp_core::JxpConfig;
use jxp_webgraph::generators::amazon_2005;

fn main() {
    let ctx = ExperimentCtx::from_env(1200);
    println!(
        "== Figure 4: JXP convergence, Amazon (scale {}, {} meetings, top-{}) ==",
        ctx.scale, ctx.meetings, ctx.top_k
    );
    let ds = load_dataset(&amazon_2005(), ctx.scale);
    println!(
        "dataset: {} pages, {} links, 100 peers",
        ds.cg.graph.num_nodes(),
        ds.cg.graph.num_edges()
    );
    let mut net = build_network(
        &ds,
        JxpConfig::baseline(),
        SelectionStrategy::Random,
        4,
        ctx.threads,
    );
    let samples = run_convergence(&mut net, &ds, ctx.meetings, ctx.sample_every, ctx.top_k);
    print_samples(
        "baseline JXP (full merge, averaging, random meetings)",
        &samples,
    );
    ctx.write_csv("fig04_amazon.csv", &samples_to_csv(&samples));
    ctx.write_figure(
        "fig04_amazon_footrule.svg",
        "Figure 4(a): JXP convergence (amazon)",
        "Spearman footrule (top-k)",
        &[("baseline JXP", &samples)],
        |p| p.footrule,
    );
    ctx.write_figure(
        "fig04_amazon_error.svg",
        "Figure 4(b): linear score error (amazon)",
        "linear score error",
        &[("baseline JXP", &samples)],
        |p| p.linear_error,
    );

    let first = samples.first().unwrap();
    let last = samples.last().unwrap();
    println!("\nShape check vs paper (Fig. 4): error drops quickly with meetings —");
    println!(
        "footrule {:.3} → {:.3}, linear error {:.2e} → {:.2e}",
        first.footrule, last.footrule, first.linear_error, last.linear_error
    );
    assert!(
        last.footrule < first.footrule * 0.7,
        "footrule did not drop"
    );
    assert!(
        last.linear_error < first.linear_error,
        "score error did not drop"
    );
}
