//! Out-of-core benchmark for the disk-backed segmented webgraph
//! (`jxp-segstore`): build a synthetic crawl far larger than any peer
//! would hold in memory, stream it straight into segment containers
//! (the full graph is **never** materialized), and run per-peer
//! extended-graph PageRank — the workload every JXP peer runs locally —
//! against the segment store under a tight resident-segment budget.
//!
//! The benchmark has two halves:
//!
//! 1. **Verify scale** (small enough for an in-memory `CsrGraph`): the
//!    identical synthetic crawl is built both ways and global PageRank
//!    plus a per-peer extended-graph run are asserted **bit-identical**
//!    at 1, 2 and 8 threads. This is the determinism gate — if the
//!    segment path ever drifts from the in-memory path the process
//!    aborts before any number is reported.
//! 2. **Full scale** (default 10M nodes): edges are streamed from the
//!    deterministic crawl formula directly into the `SegmentWriter`
//!    spill files, then two workloads run: a *resident* contiguous
//!    fragment that fits the cache budget (cold fault-in vs warm
//!    all-hits reruns) and a *streaming* strided fragment that sweeps
//!    every segment while resident memory stays pinned at the budget.
//!
//! Results go to `BENCH_segment.json` in the current directory
//! (`JXP_RESULTS` moves them next to the CSV artifacts). Env knobs so
//! CI can shrink the run: `JXP_SEG_NODES` (default 10_000_000),
//! `JXP_SEG_SEGMENT_NODES` (65_536), `JXP_SEG_BUDGET` (8 resident
//! segments), `JXP_SEG_VERIFY` (200_000 nodes for the in-memory
//! equivalence half), `JXP_SEG_DIR` (where segment directories live;
//! defaults to a per-pid temp dir, removed on success).

use jxp_core::config::JxpConfig;
use jxp_core::peer::JxpPeer;
use jxp_pagerank::{pagerank, PageRankConfig};
use jxp_segstore::{BackingKind, SegStoreConfig, SegmentWriter, SegmentedGraph, SegstoreMetrics};
use jxp_webgraph::{CsrGraph, GraphBuilder, GraphSource, PageId};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// splitmix64 — the deterministic heart of the synthetic crawl.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Emit node `i`'s out-links for an `n`-node synthetic crawl: a skewed
/// degree distribution (1..=8 links, 1-in-16 pages dangling) with a
/// hub bias (half of all pages point one link into the first 1024
/// pages, giving the graph the head-heavy in-degree shape of a real
/// crawl). Pure function of `(i, n)` — both the in-memory and the
/// streamed builds call exactly this.
fn crawl_links(i: u64, n: u64, mut f: impl FnMut(u32, u32)) {
    let h = mix(i.wrapping_mul(0x517c_c1b7_2722_0a95));
    if h.is_multiple_of(16) {
        return; // dangling page
    }
    let degree = 1 + (h >> 8) % 8;
    for k in 0..degree {
        let dst = mix(h.wrapping_add(k)) % n;
        if dst != i {
            f(i as u32, dst as u32);
        }
    }
    if h.is_multiple_of(2) {
        let hub = mix(h ^ 0xdead_beef) % 1024.min(n);
        if hub != i {
            f(i as u32, hub as u32);
        }
    }
}

/// FNV-1a over the exact bit patterns of a score vector (the digest the
/// other benches use for cross-run equivalence gates).
fn score_hash(scores: &[f64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for s in scores {
        for b in s.to_bits().to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

fn build_in_memory(n: usize) -> CsrGraph {
    let mut b = GraphBuilder::new();
    b.ensure_nodes(n);
    for i in 0..n as u64 {
        crawl_links(i, n as u64, |s, d| b.add_edge(PageId(s), PageId(d)));
    }
    b.build()
}

fn stream_to_segments(n: usize, dir: &Path, segment_nodes: usize) -> jxp_segstore::Manifest {
    let mut w = SegmentWriter::create(dir, segment_nodes).expect("create segment writer");
    w.ensure_nodes(n);
    for i in 0..n as u64 {
        crawl_links(i, n as u64, |s, d| {
            w.add_edge(PageId(s), PageId(d)).expect("spill edge")
        });
    }
    w.finish().expect("finish segments")
}

fn open(dir: &Path, budget: usize) -> SegmentedGraph {
    SegmentedGraph::open_with(
        dir,
        SegStoreConfig {
            resident_segments: budget,
            backing: BackingKind::Pread,
        },
        SegstoreMetrics::detached(),
    )
    .expect("open segment dir")
}

/// Run per-peer extended-graph PageRank for `pages` against `source`
/// and return (seconds, score hash).
fn peer_run<G: GraphSource + ?Sized>(
    source: &G,
    pages: &[PageId],
    n_total: u64,
    threads: usize,
) -> (f64, u64) {
    let cfg = JxpConfig {
        threads,
        ..Default::default()
    };
    let start = Instant::now();
    let peer = JxpPeer::from_source(source, pages.iter().copied(), n_total, cfg);
    (start.elapsed().as_secs_f64(), score_hash(peer.scores()))
}

fn main() {
    let nodes = env_usize("JXP_SEG_NODES", 10_000_000);
    let segment_nodes = env_usize("JXP_SEG_SEGMENT_NODES", 65_536);
    let budget = env_usize("JXP_SEG_BUDGET", 8);
    let verify_nodes = env_usize("JXP_SEG_VERIFY", 200_000);
    let base = std::env::var("JXP_SEG_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| {
            std::env::temp_dir().join(format!("jxp_bench_segment_{}", std::process::id()))
        });
    let threads_sweep = [1usize, 2, 8];

    println!(
        "== Segmented out-of-core webgraph: {nodes} nodes in {segment_nodes}-node segments, \
         budget {budget} resident =="
    );

    // ---- Half 1: bit-identical equivalence at verify scale ----------
    println!("[verify] building {verify_nodes}-node crawl in memory and as segments");
    let vg = build_in_memory(verify_nodes);
    let vdir = base.join("verify");
    let _ = std::fs::remove_dir_all(&vdir);
    let vmanifest = stream_to_segments(verify_nodes, &vdir, segment_nodes.min(16_384));
    assert_eq!(vmanifest.num_nodes as usize, vg.num_nodes());
    assert_eq!(vmanifest.num_edges as usize, vg.num_edges());
    let vsg = open(&vdir, budget.min(4));
    let vpages: Vec<PageId> = (0..verify_nodes as u32).step_by(97).map(PageId).collect();
    for &threads in &threads_sweep {
        let cfg = PageRankConfig {
            threads,
            ..Default::default()
        };
        let mem = pagerank(&vg, &cfg);
        let disk = pagerank(&vsg, &cfg);
        assert_eq!(
            score_hash(mem.scores()),
            score_hash(disk.scores()),
            "global scores diverged at {threads} threads"
        );
        let (_, mem_peer) = peer_run(&vg, &vpages, verify_nodes as u64, threads);
        let (_, disk_peer) = peer_run(&vsg, &vpages, verify_nodes as u64, threads);
        assert_eq!(
            mem_peer, disk_peer,
            "per-peer scores diverged at {threads} threads"
        );
        println!("[verify] {threads} threads: global + per-peer bit-identical ✓");
    }
    let _ = std::fs::remove_dir_all(&vdir);

    // ---- Half 2: the full out-of-core run ---------------------------
    let dir = base.join("full");
    let _ = std::fs::remove_dir_all(&dir);
    println!("[build] streaming {nodes}-node crawl into segments (never in memory)");
    let build_start = Instant::now();
    let manifest = stream_to_segments(nodes, &dir, segment_nodes);
    let build_secs = build_start.elapsed().as_secs_f64();
    let encoded = manifest.total_encoded_bytes();
    println!(
        "[build] {} edges in {} segments, {:.1} MB encoded, {build_secs:.1}s",
        manifest.num_edges,
        manifest.segments.len(),
        encoded as f64 / 1e6
    );

    // Resident workload: a contiguous fragment spanning at most
    // `budget` segments — cold pass faults them in, warm passes are
    // pure cache hits.
    let resident_span = (budget * segment_nodes).min(nodes);
    let resident_pages: Vec<PageId> = (0..resident_span as u32).map(PageId).collect();
    // Streaming workload: a strided fragment sweeping every segment;
    // resident memory stays pinned at the budget the whole time.
    let stride = (nodes / (resident_span / 2).max(1)).max(1) * 2 + 1;
    let streaming_pages: Vec<PageId> = (0..nodes as u32).step_by(stride).map(PageId).collect();

    struct Run {
        threads: usize,
        cold_secs: f64,
        warm_secs: f64,
        hash: u64,
    }
    let mut resident_runs: Vec<Run> = Vec::new();
    let mut streaming_runs: Vec<Run> = Vec::new();
    let mut peak_resident_bytes = 0u64;

    println!(
        "{:>10} {:>8} {:>10} {:>10} {:>18}",
        "workload", "threads", "cold s", "warm s", "score hash"
    );
    for &threads in &threads_sweep {
        for (name, pages, runs) in [
            ("resident", &resident_pages, &mut resident_runs),
            ("streaming", &streaming_pages, &mut streaming_runs),
        ] {
            // Cold: a fresh SegmentedGraph faults everything from disk.
            let sg = open(&dir, budget);
            let (cold_secs, cold_hash) = peer_run(&sg, pages, nodes as u64, threads);
            // Warm: same cache, rerun. For the resident workload every
            // access is a hit; for the streaming one the sweep still
            // thrashes the LRU (that is the point of the budget).
            let (warm_secs, warm_hash) = peer_run(&sg, pages, nodes as u64, threads);
            assert_eq!(cold_hash, warm_hash, "{name}: warm rerun changed scores");
            if name == "resident" {
                let m = sg.metrics();
                assert!(
                    m.hits_total.get() > 0,
                    "resident warm pass produced no cache hits"
                );
            }
            peak_resident_bytes = peak_resident_bytes.max(sg.resident_bytes());
            assert!(
                sg.resident_bytes() < encoded,
                "resident bytes {} not below encoded size {encoded}",
                sg.resident_bytes()
            );
            println!(
                "{:>10} {:>8} {:>10.3} {:>10.3} {:>18}",
                name,
                threads,
                cold_secs,
                warm_secs,
                format!("{cold_hash:016x}")
            );
            runs.push(Run {
                threads,
                cold_secs,
                warm_secs,
                hash: cold_hash,
            });
        }
    }
    for runs in [&resident_runs, &streaming_runs] {
        for r in runs.iter() {
            assert_eq!(
                r.hash, runs[0].hash,
                "scores diverged at {} threads",
                r.threads
            );
        }
    }
    println!("score hashes identical across all thread counts ✓");
    println!(
        "peak resident {:.1} MB of {:.1} MB encoded ({:.1}%)",
        peak_resident_bytes as f64 / 1e6,
        encoded as f64 / 1e6,
        100.0 * peak_resident_bytes as f64 / encoded as f64
    );

    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"workload\": \"synthetic crawl, per-peer extended-graph pagerank\","
    );
    let _ = writeln!(json, "  \"nodes\": {nodes},");
    let _ = writeln!(json, "  \"edges\": {},", manifest.num_edges);
    let _ = writeln!(json, "  \"segments\": {},", manifest.segments.len());
    let _ = writeln!(json, "  \"segment_nodes\": {segment_nodes},");
    let _ = writeln!(json, "  \"budget_segments\": {budget},");
    let _ = writeln!(json, "  \"encoded_bytes\": {encoded},");
    let _ = writeln!(json, "  \"peak_resident_bytes\": {peak_resident_bytes},");
    let _ = writeln!(json, "  \"build_seconds\": {build_secs:.3},");
    let _ = writeln!(
        json,
        "  \"verify\": {{\"nodes\": {verify_nodes}, \"threads\": [1, 2, 8], \
         \"bit_identical\": true}},"
    );
    for (label, runs, comma) in [
        ("resident_runs", &resident_runs, ","),
        ("streaming_runs", &streaming_runs, ""),
    ] {
        let _ = writeln!(json, "  \"{label}\": [");
        for (i, r) in runs.iter().enumerate() {
            let c = if i + 1 == runs.len() { "" } else { "," };
            let _ = writeln!(
                json,
                "    {{\"threads\": {}, \"cold_seconds\": {:.4}, \"warm_seconds\": {:.4}, \
                 \"score_hash\": \"{:016x}\"}}{c}",
                r.threads, r.cold_secs, r.warm_secs, r.hash
            );
        }
        let _ = writeln!(json, "  ]{comma}");
    }
    json.push_str("}\n");

    let path = std::env::var("JXP_RESULTS")
        .map(|d| PathBuf::from(d).join("BENCH_segment.json"))
        .unwrap_or_else(|_| PathBuf::from("BENCH_segment.json"));
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create results dir");
        }
    }
    std::fs::write(&path, &json).expect("write BENCH_segment.json");
    println!("[json] {}", path.display());
    if std::env::var("JXP_SEG_DIR").is_err() {
        let _ = std::fs::remove_dir_all(&base);
    }
}
