//! Figure 10: peer-selection strategies on the Web crawl.
//!
//! Same comparison as Figure 9; the paper reports the meetings needed for
//! footrule < 0.1 dropping from 2,480 to 1,650 with pre-meetings, and
//! total transfer from 4.59 to 3.22 GB (~30%).

use jxp_bench::drivers::selection_comparison;
use jxp_bench::ExperimentCtx;

fn main() {
    selection_comparison(&ExperimentCtx::from_env(1800), "web");
}
