#![deny(missing_docs)]
//! # jxp-bench
//!
//! Experiment harness: one binary per table/figure of the paper's
//! evaluation (§6), plus criterion micro-benchmarks.
//!
//! | Paper item | Binary |
//! |---|---|
//! | Figure 3 (in-degree distributions) | `fig03_indegree` |
//! | Figure 4 (convergence, Amazon) | `fig04_convergence_amazon` |
//! | Figure 5 (convergence, Web) | `fig05_convergence_web` |
//! | Figure 6 (merge modes, Amazon) | `fig06_merging_amazon` |
//! | Figure 7 (merge modes, Web) | `fig07_merging_web` |
//! | Table 1 (merge CPU time) | `table1_cpu` |
//! | Figure 8 (score combination) | `fig08_combine` |
//! | Figure 9 (peer selection, Amazon) | `fig09_selection_amazon` |
//! | Figure 10 (peer selection, Web) | `fig10_selection_web` |
//! | Figures 11/12 (message sizes) | `fig11_msgsize_amazon`, `fig12_msgsize_web` |
//! | Table 2 (P2P search precision) | `table2_search` |
//! | Ablations (beyond the paper) | `ablation` |
//! | Everything | `run_all` |
//!
//! Experiments run at a configurable **scale** (`JXP_SCALE`, default 0.2)
//! of the paper's dataset sizes so the default `run_all` finishes in
//! minutes on a laptop; `JXP_SCALE=1.0` reproduces the full 55k/104k-page
//! setups. `JXP_MEETINGS` overrides the meeting budget and `JXP_THREADS`
//! the meeting-engine worker count (default all cores; results are
//! bit-identical for every value, see `jxp_p2pnet::parallel`). Results
//! are printed and written as CSV under `results/`.

pub mod drivers;
pub mod plot;

use jxp_core::selection::SelectionStrategy;
use jxp_core::JxpConfig;
use jxp_p2pnet::assign::{assign_by_crawlers, CrawlerParams};
use jxp_p2pnet::{Network, NetworkConfig};
use jxp_pagerank::{metrics, pagerank, PageRankConfig, Ranking};
use jxp_webgraph::generators::{CategorizedGraph, DatasetPreset};
use jxp_webgraph::Subgraph;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::path::PathBuf;

/// Experiment-wide context read from the environment.
#[derive(Debug, Clone)]
pub struct ExperimentCtx {
    /// Dataset scale in (0, 1]; 1.0 = the paper's sizes.
    pub scale: f64,
    /// Total meetings to simulate.
    pub meetings: usize,
    /// Sampling interval (in meetings) for convergence curves.
    pub sample_every: usize,
    /// Top-k for footrule / linear-error metrics.
    pub top_k: usize,
    /// Meeting-engine worker threads (`0` = available parallelism).
    /// Purely a wall-clock knob: the round-based engine produces
    /// bit-identical results for every value.
    pub threads: usize,
    /// Output directory for CSV files.
    pub out_dir: PathBuf,
}

impl ExperimentCtx {
    /// Build from `JXP_SCALE` / `JXP_MEETINGS` / `JXP_TOPK` environment
    /// variables with the given default meeting budget.
    pub fn from_env(default_meetings: usize) -> Self {
        let scale = std::env::var("JXP_SCALE")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0.2);
        let meetings = std::env::var("JXP_MEETINGS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(default_meetings);
        // The paper evaluates the top-1000 of its full-size collections;
        // keep the same top-k : N ratio at reduced scales.
        let top_k = std::env::var("JXP_TOPK")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(((1000.0 * scale) as usize).max(100));
        let threads = std::env::var("JXP_THREADS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        let out_dir = std::env::var("JXP_RESULTS")
            .map(PathBuf::from)
            .unwrap_or_else(|_| PathBuf::from("results"));
        ExperimentCtx {
            scale,
            meetings,
            sample_every: (meetings / 30).max(1),
            top_k,
            threads,
            out_dir,
        }
    }

    /// Write a CSV artifact and echo its path.
    pub fn write_csv(&self, name: &str, content: &str) {
        std::fs::create_dir_all(&self.out_dir).expect("create results dir");
        let path = self.out_dir.join(name);
        std::fs::write(&path, content).expect("write csv");
        println!("  [csv] {}", path.display());
    }

    /// Render convergence sample sets as an SVG figure (one series per
    /// labelled sample set; `metric` picks the y value).
    pub fn write_figure(
        &self,
        name: &str,
        title: &str,
        y_label: &str,
        labelled: &[(&str, &[SamplePoint])],
        metric: fn(&SamplePoint) -> f64,
    ) {
        let series: Vec<plot::Series> = labelled
            .iter()
            .map(|(label, samples)| {
                plot::Series::new(
                    *label,
                    samples
                        .iter()
                        .map(|p| (p.meetings as f64, metric(p)))
                        .collect(),
                )
            })
            .collect();
        let svg = plot::line_chart(title, "meetings in the network", y_label, &series);
        std::fs::create_dir_all(&self.out_dir).expect("create results dir");
        let path = self.out_dir.join(name);
        std::fs::write(&path, svg).expect("write svg");
        println!("  [svg] {}", path.display());
    }
}

/// A generated dataset with its centralized-PageRank ground truth.
///
/// Mirrors the paper's construction: a Web-like collection is crawled by
/// the per-peer thematic crawlers of §6.1 (producing arbitrarily
/// overlapping fragments); pages the hub-biased crawlers miss are handed
/// round-robin to same-category peers as stray bookmarks, so **every
/// collection page is held by at least one peer** — the paper's total
/// ranking spans the whole collection. Out-degrees are consistent between
/// the peers' fragments and the centralized ground truth (fragments keep
/// their pages' complete out-link lists).
pub struct Dataset {
    /// Preset name ("amazon" / "web").
    pub name: &'static str,
    /// The collection as a categorized graph.
    pub cg: CategorizedGraph,
    /// Per-peer fragments covering the collection (100 peers).
    pub fragments: Vec<Subgraph>,
    /// Centralized PageRank scores over the collection.
    pub truth: Vec<f64>,
    /// The same as a [`Ranking`].
    pub truth_ranking: Ranking,
}

/// Generate a dataset at `scale`: source graph → §6.1 crawls → union
/// collection → ground truth.
pub fn load_dataset(preset: &DatasetPreset, scale: f64) -> Dataset {
    load_dataset_seeded(preset, scale, 0xC4A3)
}

/// [`load_dataset`] with an explicit crawl seed (for variance studies).
pub fn load_dataset_seeded(preset: &DatasetPreset, scale: f64, crawl_seed: u64) -> Dataset {
    let cg = if scale >= 1.0 {
        preset.generate()
    } else {
        preset.generate_scaled(scale)
    };
    let n = cg.graph.num_nodes();
    let peers = 10 * cg.num_categories;
    let params = CrawlerParams {
        peers_per_category: 10,
        seeds_per_peer: 2,
        max_depth: 6,
        // Cap fragments near 1.5× the fair share (jittered per peer so
        // peer sizes spread like the paper's Table 1). Sparser fragments
        // keep the in-link knowledge scattered — the regime the paper's
        // peer-selection strategy (§4.3) is designed for.
        max_pages: Some((n / peers).max(20)),
        max_pages_jitter: 1.0,
        off_category_follow_prob: 0.5,
    };
    let mut rng = StdRng::seed_from_u64(crawl_seed);
    let mut fragments = assign_by_crawlers(&cg, &params, &mut rng);

    // The crawlers overlap heavily on the hub cores, leaving tail pages
    // unfetched; the paper's evaluation assumes every collection page is
    // held somewhere (its total ranking spans the whole collection). Hand
    // each uncrawled page to one same-category peer, as that peer's
    // stray bookmarks.
    let mut holder = vec![false; n];
    for f in &fragments {
        for p in f.pages() {
            holder[p.index()] = true;
        }
    }
    let mut extra: Vec<Vec<jxp_webgraph::PageId>> = vec![Vec::new(); fragments.len()];
    let mut rr = 0usize;
    for p in 0..n as u32 {
        let page = jxp_webgraph::PageId(p);
        if !holder[p as usize] {
            let cat = cg.category(page);
            let peer = 10 * cat + (rr % 10);
            rr += 1;
            extra[peer].push(page);
        }
    }
    for (i, pages) in extra.into_iter().enumerate() {
        if !pages.is_empty() {
            let mut all: Vec<jxp_webgraph::PageId> = fragments[i].pages().to_vec();
            all.extend(pages);
            fragments[i] = Subgraph::from_pages(&cg.graph, all);
        }
    }

    let truth = pagerank(&cg.graph, &PageRankConfig::default()).into_scores();
    let truth_ranking = jxp_core::evaluate::centralized_ranking(&truth);
    Dataset {
        name: preset.name,
        cg,
        fragments,
        truth,
        truth_ranking,
    }
}

/// One sampled point of a convergence experiment.
#[derive(Debug, Clone)]
pub struct SamplePoint {
    /// Global meeting count at the sample.
    pub meetings: u64,
    /// Spearman's footrule distance to the centralized ranking (top-k).
    pub footrule: f64,
    /// Linear score error (top-k of the centralized ranking).
    pub linear_error: f64,
    /// Cumulative bytes on the wire.
    pub total_bytes: u64,
}

/// Run `total` meetings on `net`, sampling both §6.2 error metrics every
/// `sample_every` meetings (plus meeting 0). Meetings go through the
/// round-based engine ([`Network::run_parallel`]), so experiments use
/// every core while staying exactly reproducible: the engine's results
/// are bit-identical for every thread count.
pub fn run_convergence(
    net: &mut Network,
    ds: &Dataset,
    total: usize,
    sample_every: usize,
    top_k: usize,
) -> Vec<SamplePoint> {
    let mut samples = Vec::with_capacity(total / sample_every + 2);
    let sample = |net: &Network| {
        let ranking = net.total_ranking();
        SamplePoint {
            meetings: net.meetings(),
            footrule: metrics::footrule_distance(&ranking, &ds.truth_ranking, top_k),
            linear_error: metrics::linear_score_error(&ranking, &ds.truth_ranking, top_k),
            total_bytes: net.bandwidth().total_bytes(),
        }
    };
    samples.push(sample(net));
    let mut done = 0;
    while done < total {
        let step = sample_every.min(total - done);
        net.run_parallel(step);
        done += step;
        samples.push(sample(net));
    }
    samples
}

/// Format sample points as a CSV string.
pub fn samples_to_csv(samples: &[SamplePoint]) -> String {
    let mut s = String::from("meetings,footrule,linear_error,total_bytes\n");
    for p in samples {
        let _ = writeln!(
            s,
            "{},{:.6},{:.3e},{}",
            p.meetings, p.footrule, p.linear_error, p.total_bytes
        );
    }
    s
}

/// Print sample points as an aligned table.
pub fn print_samples(label: &str, samples: &[SamplePoint]) {
    println!("  {label}");
    println!(
        "  {:>9} {:>10} {:>14} {:>12}",
        "meetings", "footrule", "linear error", "MB total"
    );
    for p in samples {
        println!(
            "  {:>9} {:>10.4} {:>14.3e} {:>12.2}",
            p.meetings,
            p.footrule,
            p.linear_error,
            p.total_bytes as f64 / 1e6
        );
    }
}

/// Build a [`Network`] over the dataset's 100-peer layout with the given
/// JXP config and selection strategy. `threads` is the meeting-engine
/// worker count (`0` = available parallelism; results do not depend on
/// it).
pub fn build_network(
    ds: &Dataset,
    jxp: JxpConfig,
    strategy: SelectionStrategy,
    seed: u64,
    threads: usize,
) -> Network {
    let config = NetworkConfig {
        jxp,
        strategy,
        threads,
        ..Default::default()
    };
    Network::new(
        ds.fragments.clone(),
        ds.cg.graph.num_nodes() as u64,
        config,
        seed ^ 0x5EED,
    )
}

/// FNV-1a over the bit patterns of every peer's score list: any
/// divergence — across thread counts or with telemetry toggled — down
/// to the last ulp, changes it.
pub fn score_hash(net: &Network) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for peer in net.peers() {
        for s in peer.scores() {
            for b in s.to_bits().to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
    }
    h
}

/// Run independent experiment jobs on threads (one per job, via a scoped
/// spawn) and return their results in submission order. Used by the
/// multi-seed sweeps so `run_all` wall-time stays in minutes.
pub fn run_parallel<T, F>(jobs: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    std::thread::scope(|scope| {
        let handles: Vec<_> = jobs.into_iter().map(|job| scope.spawn(job)).collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("experiment job panicked"))
            .collect()
    })
}

/// First meeting count at which the footrule drops below `threshold`
/// (`None` if never) — used for the §6.2 "meetings to reach X" numbers.
pub fn meetings_to_reach(samples: &[SamplePoint], threshold: f64) -> Option<u64> {
    samples
        .iter()
        .find(|p| p.footrule < threshold)
        .map(|p| p.meetings)
}

/// Cumulative bytes at the first sample below the footrule threshold.
pub fn bytes_to_reach(samples: &[SamplePoint], threshold: f64) -> Option<u64> {
    samples
        .iter()
        .find(|p| p.footrule < threshold)
        .map(|p| p.total_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use jxp_webgraph::generators::amazon_2005;

    #[test]
    fn ctx_defaults() {
        let ctx = ExperimentCtx::from_env(900);
        assert!(ctx.scale > 0.0 && ctx.scale <= 1.0);
        assert_eq!(ctx.meetings, 900);
        assert!(ctx.sample_every >= 1);
    }

    #[test]
    fn tiny_end_to_end_convergence() {
        let ds = load_dataset(&amazon_2005(), 0.01);
        let mut net = build_network(&ds, JxpConfig::default(), SelectionStrategy::Random, 1, 1);
        let samples = run_convergence(&mut net, &ds, 60, 20, 50);
        assert_eq!(samples.len(), 4);
        assert!(samples[0].meetings == 0);
        assert!(samples.last().unwrap().meetings == 60);
        // Error must improve from the zero-knowledge start.
        assert!(samples.last().unwrap().footrule < samples[0].footrule);
        let csv = samples_to_csv(&samples);
        assert!(csv.lines().count() == 5);
        assert!(csv.starts_with("meetings,"));
    }

    #[test]
    fn run_parallel_preserves_order() {
        let jobs: Vec<_> = (0..8).map(|i| move || i * i).collect();
        assert_eq!(run_parallel(jobs), vec![0, 1, 4, 9, 16, 25, 36, 49]);
    }

    #[test]
    fn reach_helpers() {
        let samples = vec![
            SamplePoint {
                meetings: 0,
                footrule: 0.9,
                linear_error: 1.0,
                total_bytes: 0,
            },
            SamplePoint {
                meetings: 10,
                footrule: 0.5,
                linear_error: 0.5,
                total_bytes: 100,
            },
            SamplePoint {
                meetings: 20,
                footrule: 0.1,
                linear_error: 0.2,
                total_bytes: 250,
            },
        ];
        assert_eq!(meetings_to_reach(&samples, 0.2), Some(20));
        assert_eq!(bytes_to_reach(&samples, 0.2), Some(250));
        assert_eq!(meetings_to_reach(&samples, 0.05), None);
    }
}
