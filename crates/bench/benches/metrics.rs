//! Micro-benchmarks of the evaluation machinery itself: the §6.2 metrics
//! run once per sampled point of every convergence experiment, so their
//! cost bounds how densely the experiments can sample.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jxp_pagerank::{metrics, Ranking};
use jxp_webgraph::PageId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn random_ranking(n: u32, seed: u64) -> Ranking {
    let mut rng = StdRng::seed_from_u64(seed);
    Ranking::from_scores((0..n).map(|p| (PageId(p), rng.gen::<f64>())))
}

fn bench_footrule(c: &mut Criterion) {
    let mut g = c.benchmark_group("footrule_distance");
    for n in [1_000u32, 10_000, 50_000] {
        let a = random_ranking(n, 1);
        let b = random_ranking(n, 2);
        g.bench_with_input(BenchmarkId::from_parameter(n), &(a, b), |bench, (a, b)| {
            bench.iter(|| black_box(metrics::footrule_distance(a, b, 1000)));
        });
    }
    g.finish();
}

fn bench_linear_error(c: &mut Criterion) {
    let a = random_ranking(50_000, 3);
    let b = random_ranking(50_000, 4);
    c.bench_function("linear_score_error_50k_top1000", |bench| {
        bench.iter(|| black_box(metrics::linear_score_error(&a, &b, 1000)));
    });
}

fn bench_ranking_build(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let pairs: Vec<(PageId, f64)> = (0..50_000u32)
        .map(|p| (PageId(p), rng.gen::<f64>()))
        .collect();
    c.bench_function("ranking_from_scores_50k", |bench| {
        bench.iter(|| black_box(Ranking::from_scores(pairs.iter().copied())));
    });
}

criterion_group!(
    benches,
    bench_footrule,
    bench_linear_error,
    bench_ranking_build
);
criterion_main!(benches);
