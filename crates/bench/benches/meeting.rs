//! Micro-benchmark of the JXP meeting step: full (Algorithm 2) vs
//! light-weight (§4.1) merging — the microscopic view behind Table 1.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jxp_core::{meeting, CombineMode, JxpConfig, JxpPeer, MergeMode};
use jxp_webgraph::generators::{CategorizedGraph, CategorizedParams};
use jxp_webgraph::{PageId, Subgraph};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn peers(merge: MergeMode, pages_per_peer: usize) -> (JxpPeer, JxpPeer) {
    let cg = CategorizedGraph::generate(
        &CategorizedParams {
            num_categories: 2,
            nodes_per_category: pages_per_peer * 2,
            intra_out_per_node: 4,
            cross_fraction: 0.1,
        },
        &mut StdRng::seed_from_u64(2),
    );
    let n = cg.graph.num_nodes() as u64;
    let cfg = JxpConfig {
        merge,
        combine: CombineMode::Average,
        ..JxpConfig::default()
    };
    // Overlapping fragments, as in the real network.
    let half = pages_per_peer as u32;
    let a = Subgraph::from_pages(&cg.graph, (0..half + half / 4).map(PageId));
    let b = Subgraph::from_pages(&cg.graph, (half - half / 4..2 * half).map(PageId));
    (JxpPeer::new(a, n, cfg.clone()), JxpPeer::new(b, n, cfg))
}

fn bench_meeting(c: &mut Criterion) {
    let mut g = c.benchmark_group("meeting_step");
    for pages in [200usize, 1000] {
        for (name, merge) in [("full", MergeMode::Full), ("light", MergeMode::LightWeight)] {
            g.bench_with_input(
                BenchmarkId::new(name, pages),
                &(merge, pages),
                |bench, &(merge, pages)| {
                    let (a, b) = peers(merge, pages);
                    bench.iter_batched(
                        || (a.clone(), b.clone()),
                        |(mut a, mut b)| black_box(meeting::meet(&mut a, &mut b)),
                        criterion::BatchSize::SmallInput,
                    );
                },
            );
        }
    }
    g.finish();
}

fn bench_payload(c: &mut Criterion) {
    let (a, _) = peers(MergeMode::LightWeight, 1000);
    c.bench_function("payload_assemble_1250", |b| {
        b.iter(|| black_box(a.payload()));
    });
}

criterion_group!(benches, bench_meeting, bench_payload);
criterion_main!(benches);
