//! Micro-benchmarks of the set synopses (§4.3 fundamentals): MIPs
//! construction and estimation, Bloom filters, FM sketches.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jxp_synopses::mips::{MipsPermutations, MipsVector};
use jxp_synopses::{BloomFilter, FmSketch};
use std::hint::black_box;

fn bench_mips(c: &mut Criterion) {
    let mut g = c.benchmark_group("mips");
    for dims in [64usize, 256] {
        let perms = MipsPermutations::generate(dims, 7);
        g.bench_with_input(
            BenchmarkId::new("build_2000_elems", dims),
            &perms,
            |b, perms| {
                b.iter(|| black_box(MipsVector::from_elements(perms, 0..2000u64)));
            },
        );
        let a = MipsVector::from_elements(&perms, 0..2000u64);
        let bv = MipsVector::from_elements(&perms, 1000..3000u64);
        g.bench_with_input(
            BenchmarkId::new("containment", dims),
            &(a, bv),
            |b, (x, y)| {
                b.iter(|| black_box(x.containment_of(y)));
            },
        );
    }
    g.finish();
}

fn bench_bloom(c: &mut Criterion) {
    c.bench_function("bloom_insert_2000", |b| {
        b.iter(|| {
            let mut f = BloomFilter::with_capacity(2000, 0.01);
            for x in 0..2000u64 {
                f.insert(x);
            }
            black_box(f)
        });
    });
}

fn bench_fm(c: &mut Criterion) {
    c.bench_function("fm_sketch_insert_2000", |b| {
        b.iter(|| {
            let mut s = FmSketch::new(256);
            for x in 0..2000u64 {
                s.insert(x);
            }
            black_box(s.estimate())
        });
    });
}

criterion_group!(benches, bench_mips, bench_bloom, bench_fm);
criterion_main!(benches);
