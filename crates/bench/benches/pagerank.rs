//! Micro-benchmarks of the PageRank engines: the centralized power
//! iteration (ground truth) and the JXP extended-graph local computation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jxp_core::local_pr::{extended_pagerank, LocalTopology};
use jxp_core::JxpConfig;
use jxp_pagerank::{pagerank, PageRankConfig};
use jxp_webgraph::generators::{CategorizedGraph, CategorizedParams};
use jxp_webgraph::{PageId, Subgraph};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn graph(nodes_per_cat: usize) -> CategorizedGraph {
    CategorizedGraph::generate(
        &CategorizedParams {
            num_categories: 10,
            nodes_per_category: nodes_per_cat,
            intra_out_per_node: 4,
            cross_fraction: 0.1,
        },
        &mut StdRng::seed_from_u64(1),
    )
}

fn bench_centralized(c: &mut Criterion) {
    let mut g = c.benchmark_group("centralized_pagerank");
    for npc in [100usize, 500, 2000] {
        let cg = graph(npc);
        g.bench_with_input(
            BenchmarkId::from_parameter(cg.graph.num_nodes()),
            &cg,
            |b, cg| {
                b.iter(|| black_box(pagerank(&cg.graph, &PageRankConfig::default())));
            },
        );
    }
    g.finish();
}

fn bench_local_extended(c: &mut Criterion) {
    let cg = graph(500);
    let n = cg.graph.num_nodes();
    let fragment = Subgraph::from_pages(&cg.graph, (0..500).map(PageId));
    let topo = LocalTopology::build(&fragment);
    let inflow = vec![1e-4; 500];
    let init = vec![1.0 / n as f64; 500];
    let cfg = JxpConfig::default();
    c.bench_function("jxp_local_pagerank_500", |b| {
        b.iter(|| {
            black_box(extended_pagerank(
                &topo, n as f64, &inflow, &init, 0.9, &cfg,
            ))
        });
    });
    c.bench_function("jxp_topology_build_500", |b| {
        b.iter(|| black_box(LocalTopology::build(&fragment)));
    });
}

criterion_group!(benches, bench_centralized, bench_local_extended);
criterion_main!(benches);
