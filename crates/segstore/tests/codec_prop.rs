//! Property tests for the delta-varint adjacency codec and the segment
//! container: arbitrary sorted successor lists (including empty and
//! dangling nodes, single-node segments) must round-trip exactly, and
//! varints must survive any u64.

use jxp_segstore::codec::{get_adjacency, get_varint, put_adjacency, put_varint};
use jxp_segstore::segment::{decode_segment, encode_segment};
use proptest::collection::vec;
use proptest::prelude::*;

/// Strictly-increasing u32 lists, empty lists included.
fn sorted_lists() -> impl Strategy<Value = Vec<u32>> {
    vec(0u32..=u32::MAX, 0..64).prop_map(|mut v| {
        v.sort_unstable();
        v.dedup();
        v
    })
}

/// A whole segment's worth of per-node lists: up to 16 nodes, each
/// with an arbitrary sorted list (some empty — dangling nodes — and
/// the one-node-segment case when the outer vec has length 1).
fn per_node_lists() -> impl Strategy<Value = Vec<Vec<u32>>> {
    vec(sorted_lists(), 1..17)
}

fn to_csr(lists: &[Vec<u32>]) -> (Vec<u32>, Vec<u32>) {
    let mut off = vec![0u32];
    let mut adj = Vec::new();
    for l in lists {
        adj.extend_from_slice(l);
        off.push(adj.len() as u32);
    }
    (off, adj)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn varint_round_trips(v in 0u64..u64::MAX) {
        let mut buf = Vec::new();
        put_varint(&mut buf, v);
        let mut pos = 0;
        prop_assert_eq!(get_varint(&buf, &mut pos).unwrap(), v);
        prop_assert_eq!(pos, buf.len());
    }

    #[test]
    fn adjacency_round_trips(list in sorted_lists()) {
        let mut buf = Vec::new();
        put_adjacency(&mut buf, &list);
        let mut pos = 0;
        let mut back = Vec::new();
        get_adjacency(&buf, &mut pos, list.len(), &mut back).unwrap();
        prop_assert_eq!(back, list);
        prop_assert_eq!(pos, buf.len());
    }

    #[test]
    fn adjacency_rejects_every_truncation(list in sorted_lists()) {
        // The shim has no prop_assume; skip the vacuous empty case inline.
        if !list.is_empty() {
            let mut buf = Vec::new();
            put_adjacency(&mut buf, &list);
            // Dropping the final byte must never decode to the full list.
            let mut out = Vec::new();
            let r = get_adjacency(&buf[..buf.len() - 1], &mut 0, list.len(), &mut out);
            prop_assert!(r.is_err() || out.len() < list.len());
        }
    }

    #[test]
    fn segment_round_trips(fwd in per_node_lists(), rev_seed in per_node_lists(), start in 0u64..1_000_000) {
        // fwd and rev over the same node count; pad/trim rev to match.
        let n = fwd.len();
        let mut rev = rev_seed;
        rev.resize(n, Vec::new());
        let (fwd_off, fwd_adj) = to_csr(&fwd);
        let (rev_off, rev_adj) = to_csr(&rev);
        let bytes = encode_segment(7, start, &fwd_off, &fwd_adj, &rev_off, &rev_adj);
        let seg = decode_segment(&bytes).unwrap();
        prop_assert_eq!(seg.num_nodes(), n);
        prop_assert_eq!(seg.start, start);
        for i in 0..n {
            prop_assert_eq!(seg.successors_at(i), &fwd[i][..]);
            prop_assert_eq!(seg.predecessors_at(i), &rev[i][..]);
        }
    }

    #[test]
    fn segment_byte_flips_never_decode(fwd in per_node_lists(), pos in 0usize..1_000_000, mask in 1u8..=255u8) {
        let (fwd_off, fwd_adj) = to_csr(&fwd);
        let rev_off = vec![0u32; fwd_off.len()];
        let bytes = encode_segment(0, 0, &fwd_off, &fwd_adj, &rev_off, &[]);
        let mut bad = bytes.clone();
        let i = pos % bad.len();
        bad[i] ^= mask;
        prop_assert!(decode_segment(&bad).is_err(), "flip {mask:#x} at {i}");
    }
}
