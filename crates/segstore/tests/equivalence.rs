//! The determinism contract of the segment store, end to end: PageRank
//! over a `SegmentedGraph` must be **bit-identical** to PageRank over
//! the same graph as an in-memory `CsrGraph` — at 1, 2 and 8 threads,
//! under a tight cache budget, with either backing — and the per-peer
//! extended-graph path (`Subgraph`/`JxpPeer` from a source) must agree
//! the same way.

use jxp_core::config::JxpConfig;
use jxp_core::peer::JxpPeer;
use jxp_pagerank::{pagerank, PageRankConfig};
use jxp_segstore::{write_segments, BackingKind, SegStoreConfig, SegmentedGraph, SegstoreMetrics};
use jxp_webgraph::generators::amazon_2005;
use jxp_webgraph::{CsrGraph, PageId, Subgraph};
use std::path::PathBuf;

/// FNV-1a over the exact bit patterns of a score vector (the same
/// digest `jxp-bench` uses for cross-run equivalence gates).
fn score_hash(scores: &[f64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for s in scores {
        for b in s.to_bits().to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("jxp_equiv_{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A seeded ~5.5k-node categorized graph (the amazon preset at 1/10
/// scale): hubs, cross-category links and enough nodes to span many
/// segments.
fn seeded_graph() -> CsrGraph {
    amazon_2005().generate_scaled(0.1).graph
}

#[test]
fn global_pagerank_matches_csr_at_1_2_8_threads() {
    let g = seeded_graph();
    let dir = tmp("global");
    write_segments(&g, &dir, 512).unwrap();
    // 4 resident segments out of ~11: plenty of eviction traffic.
    let sg = SegmentedGraph::open_with(
        &dir,
        SegStoreConfig {
            resident_segments: 4,
            backing: BackingKind::Pread,
        },
        SegstoreMetrics::detached(),
    )
    .unwrap();

    for threads in [1usize, 2, 8] {
        let cfg = PageRankConfig {
            threads,
            ..Default::default()
        };
        let mem = pagerank(&g, &cfg);
        let disk = pagerank(&sg, &cfg);
        assert_eq!(
            score_hash(mem.scores()),
            score_hash(disk.scores()),
            "score hash diverges at {threads} threads"
        );
        assert_eq!(mem.scores(), disk.scores(), "scores at {threads} threads");
        assert_eq!(mem.iterations(), disk.iterations());
    }
    assert!(sg.metrics().evictions_total.get() > 0, "budget never bound");
}

#[test]
fn per_peer_extended_pagerank_matches_in_memory_path() {
    let g = seeded_graph();
    let n_total = g.num_nodes() as u64;
    let dir = tmp("perpeer");
    write_segments(&g, &dir, 256).unwrap();
    let sg = SegmentedGraph::open_with(
        &dir,
        SegStoreConfig {
            resident_segments: 2,
            backing: BackingKind::Read,
        },
        SegstoreMetrics::detached(),
    )
    .unwrap();

    // Three fragments with different shapes: a contiguous range, a
    // strided sample, and a small tail window.
    let fragments: Vec<Vec<PageId>> = vec![
        (100u32..600).map(PageId).collect(),
        (0..(n_total as u32)).step_by(37).map(PageId).collect(),
        ((n_total as u32 - 64)..n_total as u32)
            .map(PageId)
            .collect(),
    ];

    for threads in [1usize, 2, 8] {
        let cfg = JxpConfig {
            threads,
            ..Default::default()
        };
        for (i, pages) in fragments.iter().enumerate() {
            let mem_peer = JxpPeer::new(
                Subgraph::from_pages(&g, pages.iter().copied()),
                n_total,
                cfg.clone(),
            );
            let disk_peer = JxpPeer::from_source(&sg, pages.iter().copied(), n_total, cfg.clone());
            assert_eq!(
                score_hash(mem_peer.scores()),
                score_hash(disk_peer.scores()),
                "fragment {i} diverges at {threads} threads"
            );
            assert_eq!(mem_peer.scores(), disk_peer.scores());
            assert_eq!(mem_peer.world_score(), disk_peer.world_score());
        }
    }
}

#[test]
fn results_are_independent_of_cache_budget_and_backing() {
    let g = seeded_graph();
    let dir = tmp("budgets");
    write_segments(&g, &dir, 512).unwrap();
    let cfg = PageRankConfig::default();
    let reference = pagerank(&g, &cfg).into_scores();
    for (budget, backing) in [
        (1usize, BackingKind::Read),
        (3, BackingKind::Pread),
        (64, BackingKind::Pread),
    ] {
        let sg = SegmentedGraph::open_with(
            &dir,
            SegStoreConfig {
                resident_segments: budget,
                backing,
            },
            SegstoreMetrics::detached(),
        )
        .unwrap();
        let scores = pagerank(&sg, &cfg).into_scores();
        assert_eq!(
            score_hash(&reference),
            score_hash(&scores),
            "budget {budget} diverges"
        );
        assert_eq!(reference, scores);
    }
}

#[test]
fn resident_memory_stays_under_budget_and_below_encoded_size() {
    let g = seeded_graph();
    let dir = tmp("budget_cap");
    let manifest = write_segments(&g, &dir, 256).unwrap();
    assert!(manifest.segments.len() > 8);
    let sg = SegmentedGraph::open_with(
        &dir,
        SegStoreConfig {
            resident_segments: 2,
            backing: BackingKind::Pread,
        },
        SegstoreMetrics::detached(),
    )
    .unwrap();
    let _ = pagerank(&sg, &PageRankConfig::default());
    assert_eq!(sg.metrics().resident_segments.get(), 2.0);
    assert!(
        sg.resident_bytes() < sg.total_encoded_bytes(),
        "resident {} must stay below total encoded {}",
        sg.resident_bytes(),
        sg.total_encoded_bytes()
    );
}
