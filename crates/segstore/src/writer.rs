//! Building a segment directory.
//!
//! [`SegmentWriter`] is a **streaming** builder: edges arrive in any
//! order, and each is appended to two per-segment spill files — the
//! forward spill of the segment owning its source, and the reverse
//! spill of the segment owning its target — as raw little-endian `u32`
//! pairs behind `BufWriter`s. `finish` then processes one segment at a
//! time: read its spills back, sort and deduplicate (the exact
//! `GraphBuilder` semantics, so the encoded adjacency is byte-for-byte
//! what a `CsrGraph` of the same edges would hold), encode the `JXPS`
//! container and **atomically install** it via `jxp_store::atomic`.
//! Peak memory is therefore bounded by the largest single segment, not
//! the graph — a 10M-node crawl builds in tens of MB.
//!
//! The manifest is installed last; a crash mid-build leaves spill/temp
//! files but never a readable manifest naming a missing or torn
//! segment. [`write_segments`] is the convenience path for graphs
//! already in memory.

use std::fs::{self, File};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use jxp_store::atomic;
use jxp_webgraph::PageId;

use crate::manifest::{encode_manifest, segment_file_name, Manifest, SegmentEntry, MANIFEST_FILE};
use crate::segment::{encode_segment, MAX_SEGMENT_NODES};
use crate::SegStoreError;

fn spill_name(dir: &Path, direction: char, seg: usize) -> PathBuf {
    dir.join(format!(".spill-{direction}-{seg:06}"))
}

/// Streaming builder of a segment directory.
pub struct SegmentWriter {
    dir: PathBuf,
    nodes_per_segment: u64,
    min_nodes: u64,
    max_id: Option<u32>,
    /// Lazily created spill writers, indexed by segment.
    fwd: Vec<Option<BufWriter<File>>>,
    rev: Vec<Option<BufWriter<File>>>,
}

impl SegmentWriter {
    /// Start building a segment directory at `dir` (created if absent;
    /// an existing manifest there is replaced on `finish`).
    ///
    /// # Panics
    /// Panics if `nodes_per_segment` is zero or above the format cap.
    pub fn create(dir: &Path, nodes_per_segment: usize) -> Result<Self, SegStoreError> {
        assert!(
            nodes_per_segment > 0 && nodes_per_segment <= MAX_SEGMENT_NODES,
            "nodes_per_segment must be in 1..={MAX_SEGMENT_NODES}"
        );
        fs::create_dir_all(dir)?;
        Ok(SegmentWriter {
            dir: dir.to_path_buf(),
            nodes_per_segment: nodes_per_segment as u64,
            min_nodes: 0,
            max_id: None,
            fwd: Vec::new(),
            rev: Vec::new(),
        })
    }

    /// Declare that the graph has at least `n` nodes (for trailing
    /// nodes with no edges), mirroring `GraphBuilder::ensure_nodes`.
    pub fn ensure_nodes(&mut self, n: usize) {
        self.min_nodes = self.min_nodes.max(n as u64);
    }

    /// Record the edge `src → dst`. Duplicates are deduplicated at
    /// `finish`, exactly as `GraphBuilder` does.
    pub fn add_edge(&mut self, src: PageId, dst: PageId) -> Result<(), SegStoreError> {
        self.max_id = Some(
            self.max_id
                .map_or(src.0.max(dst.0), |m| m.max(src.0).max(dst.0)),
        );
        let pair = [src.0.to_le_bytes(), dst.0.to_le_bytes()].concat();
        let fseg = (u64::from(src.0) / self.nodes_per_segment) as usize;
        self.spill(Dir::Fwd, fseg)?.write_all(&pair)?;
        let rpair = [dst.0.to_le_bytes(), src.0.to_le_bytes()].concat();
        let rseg = (u64::from(dst.0) / self.nodes_per_segment) as usize;
        self.spill(Dir::Rev, rseg)?.write_all(&rpair)?;
        Ok(())
    }

    fn spill(&mut self, dir: Dir, seg: usize) -> Result<&mut BufWriter<File>, SegStoreError> {
        let (vec, tag) = match dir {
            Dir::Fwd => (&mut self.fwd, 'f'),
            Dir::Rev => (&mut self.rev, 'r'),
        };
        if vec.len() <= seg {
            vec.resize_with(seg + 1, || None);
        }
        if vec[seg].is_none() {
            let f = File::create(spill_name(&self.dir, tag, seg))?;
            vec[seg] = Some(BufWriter::new(f));
        }
        Ok(vec[seg].as_mut().expect("just created"))
    }

    /// Sort, deduplicate, encode and atomically install every segment,
    /// then the manifest. Returns the manifest. Spill files are
    /// removed on success.
    pub fn finish(mut self) -> Result<Manifest, SegStoreError> {
        // Flush and drop every spill writer before reading them back.
        for w in self.fwd.iter_mut().chain(self.rev.iter_mut()) {
            if let Some(w) = w.as_mut() {
                w.flush()?;
            }
        }
        self.fwd.clear();
        self.rev.clear();

        let num_nodes = self
            .min_nodes
            .max(self.max_id.map_or(0, |m| u64::from(m) + 1));
        let num_segments = (num_nodes.div_ceil(self.nodes_per_segment)) as usize;

        let mut entries = Vec::with_capacity(num_segments);
        let mut fwd_total: u64 = 0;
        let mut rev_total: u64 = 0;
        for seg in 0..num_segments {
            let start = seg as u64 * self.nodes_per_segment;
            let n = (num_nodes - start).min(self.nodes_per_segment) as usize;
            let (fwd_off, fwd_adj) = build_lists(&spill_name(&self.dir, 'f', seg), start, n)?;
            let (rev_off, rev_adj) = build_lists(&spill_name(&self.dir, 'r', seg), start, n)?;
            fwd_total += fwd_adj.len() as u64;
            rev_total += rev_adj.len() as u64;
            let container =
                encode_segment(seg as u32, start, &fwd_off, &fwd_adj, &rev_off, &rev_adj);
            atomic::install(&self.dir.join(segment_file_name(seg)), &container)?;
            entries.push(SegmentEntry {
                nodes: n as u64,
                fwd_edges: fwd_adj.len() as u64,
                rev_edges: rev_adj.len() as u64,
                encoded_len: container.len() as u64,
            });
        }
        // Every edge appears once in its source's forward spill and
        // once in its target's reverse spill; after identical dedup the
        // totals must agree or something scrambled the spills.
        if fwd_total != rev_total {
            return Err(SegStoreError::corrupt(format!(
                "fwd/rev edge totals diverge: {fwd_total} vs {rev_total}"
            )));
        }

        let manifest = Manifest {
            num_nodes,
            num_edges: fwd_total,
            nodes_per_segment: self.nodes_per_segment,
            segments: entries,
        };
        atomic::install(&self.dir.join(MANIFEST_FILE), &encode_manifest(&manifest))?;

        for seg in 0..num_segments {
            for tag in ['f', 'r'] {
                let p = spill_name(&self.dir, tag, seg);
                if p.exists() {
                    fs::remove_file(p)?;
                }
            }
        }
        Ok(manifest)
    }
}

enum Dir {
    Fwd,
    Rev,
}

/// Read one spill file (raw `(key, other)` u32 pairs, `key` inside
/// `start..start+n`) and build sorted, deduplicated per-node lists.
fn build_lists(spill: &Path, start: u64, n: usize) -> Result<(Vec<u32>, Vec<u32>), SegStoreError> {
    let mut pairs: Vec<(u32, u32)> = Vec::new();
    match File::open(spill) {
        Ok(mut f) => {
            let mut bytes = Vec::new();
            f.read_to_end(&mut bytes)?;
            if bytes.len() % 8 != 0 {
                return Err(SegStoreError::corrupt("torn spill file"));
            }
            pairs.reserve(bytes.len() / 8);
            for chunk in bytes.chunks_exact(8) {
                let key = u32::from_le_bytes(chunk[0..4].try_into().unwrap());
                let other = u32::from_le_bytes(chunk[4..8].try_into().unwrap());
                pairs.push((key, other));
            }
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
        Err(e) => return Err(e.into()),
    }
    pairs.sort_unstable();
    pairs.dedup();

    let mut off = Vec::with_capacity(n + 1);
    off.push(0u32);
    let mut adj = Vec::with_capacity(pairs.len());
    let mut cursor = 0usize;
    for i in 0..n {
        let key = (start + i as u64) as u32;
        while cursor < pairs.len() && pairs[cursor].0 == key {
            adj.push(pairs[cursor].1);
            cursor += 1;
        }
        off.push(adj.len() as u32);
    }
    debug_assert_eq!(cursor, pairs.len(), "spill pair outside segment range");
    Ok((off, adj))
}

/// Write an in-memory graph as a segment directory (convenience over
/// [`SegmentWriter`] for tests and small graphs).
pub fn write_segments(
    g: &jxp_webgraph::CsrGraph,
    dir: &Path,
    nodes_per_segment: usize,
) -> Result<Manifest, SegStoreError> {
    let mut w = SegmentWriter::create(dir, nodes_per_segment)?;
    w.ensure_nodes(g.num_nodes());
    for (s, d) in g.edges() {
        w.add_edge(s, d)?;
    }
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::decode_segment;
    use jxp_webgraph::GraphBuilder;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("jxp_segwriter_{name}"));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn streamed_edges_match_graphbuilder_semantics() {
        let dir = tmp("semantics");
        let edges = [(5u32, 1u32), (0, 1), (0, 1), (1, 5), (3, 0), (0, 4)];
        let mut w = SegmentWriter::create(&dir, 2).unwrap();
        w.ensure_nodes(7); // trailing isolated node
        for (s, d) in edges {
            w.add_edge(PageId(s), PageId(d)).unwrap();
        }
        let manifest = w.finish().unwrap();
        assert_eq!(manifest.num_nodes, 7);
        assert_eq!(manifest.num_edges, 5); // one duplicate dropped
        assert_eq!(manifest.segments.len(), 4);

        let mut b = GraphBuilder::new();
        b.ensure_nodes(7);
        for (s, d) in edges {
            b.add_edge(PageId(s), PageId(d));
        }
        let g = b.build();
        // Segment-by-segment, adjacency must equal the CsrGraph's.
        for seg in 0..manifest.segments.len() {
            let bytes = fs::read(dir.join(segment_file_name(seg))).unwrap();
            let d = decode_segment(&bytes).unwrap();
            for i in 0..d.num_nodes() {
                let v = PageId(d.start as u32 + i as u32);
                let want: Vec<u32> = g.successors(v).map(|p| p.0).collect();
                assert_eq!(d.successors_at(i), &want[..], "fwd of {v}");
                let want: Vec<u32> = g.predecessors(v).map(|p| p.0).collect();
                assert_eq!(d.predecessors_at(i), &want[..], "rev of {v}");
            }
        }
    }

    #[test]
    fn spill_files_are_cleaned_up() {
        let dir = tmp("cleanup");
        let mut w = SegmentWriter::create(&dir, 4).unwrap();
        w.add_edge(PageId(0), PageId(9)).unwrap();
        w.finish().unwrap();
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .filter(|n| n.starts_with(".spill"))
            .collect();
        assert!(leftovers.is_empty(), "leftover spills: {leftovers:?}");
    }

    #[test]
    fn empty_graph_yields_empty_manifest() {
        let dir = tmp("empty");
        let w = SegmentWriter::create(&dir, 4).unwrap();
        let m = w.finish().unwrap();
        assert_eq!(m.num_nodes, 0);
        assert_eq!(m.segments.len(), 0);
    }

    #[test]
    fn write_segments_round_trips_a_built_graph() {
        let dir = tmp("convenience");
        let mut b = GraphBuilder::new();
        for i in 0..50u32 {
            b.add_edge(PageId(i), PageId((i + 7) % 50));
            b.add_edge(PageId(i), PageId((i * 3 + 1) % 50));
        }
        let g = b.build();
        let m = write_segments(&g, &dir, 8).unwrap();
        assert_eq!(m.num_nodes, 50);
        assert_eq!(m.num_edges as usize, g.num_edges());
        assert_eq!(m.segments.len(), 7);
        assert!(m.total_encoded_bytes() > 0);
    }
}
