//! Varint and delta-varint encoding of adjacency lists.
//!
//! Degrees and adjacency are stored as LEB128 varints. An adjacency
//! list (strictly increasing node ids, the invariant every sorted
//! deduplicated CSR list satisfies) is delta-encoded: the first id is
//! written verbatim, every later id as the gap to its predecessor
//! (always ≥ 1). Web-graph successor lists cluster around their source
//! node, so gaps are small and most ids cost one byte instead of four.
//!
//! Decoding validates everything it touches: overlong varints, values
//! that do not fit `u32`, zero gaps and truncated input are all
//! [`SegStoreError::Corrupt`] — never a panic — so a flipped byte that
//! survives CRC by luck still cannot produce an out-of-contract list.

use crate::SegStoreError;

/// Append `v` as a LEB128 varint.
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Read one LEB128 varint at `*pos`, advancing it.
pub fn get_varint(bytes: &[u8], pos: &mut usize) -> Result<u64, SegStoreError> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let &byte = bytes
            .get(*pos)
            .ok_or_else(|| SegStoreError::corrupt("truncated varint"))?;
        *pos += 1;
        if shift == 63 && byte > 1 {
            return Err(SegStoreError::corrupt("varint overflows u64"));
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(SegStoreError::corrupt("varint too long"));
        }
    }
}

/// Append a strictly-increasing id list as first-value + gaps.
///
/// # Panics
/// Debug-asserts the strict-increase invariant; the callers (segment
/// encoder) always sort and deduplicate first.
pub fn put_adjacency(out: &mut Vec<u8>, list: &[u32]) {
    debug_assert!(
        list.windows(2).all(|w| w[0] < w[1]),
        "adjacency not strictly increasing"
    );
    let mut prev = 0u32;
    for (i, &id) in list.iter().enumerate() {
        if i == 0 {
            put_varint(out, u64::from(id));
        } else {
            put_varint(out, u64::from(id - prev));
        }
        prev = id;
    }
}

/// Decode `len` ids written by [`put_adjacency`] into `out`,
/// re-validating the strict-increase invariant.
pub fn get_adjacency(
    bytes: &[u8],
    pos: &mut usize,
    len: usize,
    out: &mut Vec<u32>,
) -> Result<(), SegStoreError> {
    let mut prev: u32 = 0;
    for i in 0..len {
        let raw = get_varint(bytes, pos)?;
        let id = if i == 0 {
            u32::try_from(raw).map_err(|_| SegStoreError::corrupt("adjacency id exceeds u32"))?
        } else {
            if raw == 0 {
                return Err(SegStoreError::corrupt("zero gap in adjacency list"));
            }
            let id = u64::from(prev) + raw;
            u32::try_from(id).map_err(|_| SegStoreError::corrupt("adjacency id exceeds u32"))?
        };
        out.push(id);
        prev = id;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_one(v: u64) {
        let mut buf = Vec::new();
        put_varint(&mut buf, v);
        let mut pos = 0;
        assert_eq!(get_varint(&buf, &mut pos).unwrap(), v);
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn varint_round_trips_boundaries() {
        for v in [
            0,
            1,
            127,
            128,
            16383,
            16384,
            u64::from(u32::MAX),
            u64::MAX - 1,
            u64::MAX,
        ] {
            roundtrip_one(v);
        }
    }

    #[test]
    fn varint_rejects_truncation_and_overflow() {
        assert!(get_varint(&[], &mut 0).is_err());
        assert!(get_varint(&[0x80], &mut 0).is_err());
        assert!(get_varint(&[0x80; 9], &mut 0).is_err());
        // 10 bytes with a final byte > 1 overflows u64.
        let mut overlong = vec![0xffu8; 9];
        overlong.push(0x02);
        assert!(get_varint(&overlong, &mut 0).is_err());
    }

    #[test]
    fn adjacency_round_trips() {
        for list in [
            vec![],
            vec![0],
            vec![7],
            vec![0, 1, 2, 3],
            vec![5, 1000, 1001, 1_000_000, u32::MAX],
        ] {
            let mut buf = Vec::new();
            put_adjacency(&mut buf, &list);
            let mut pos = 0;
            let mut back = Vec::new();
            get_adjacency(&buf, &mut pos, list.len(), &mut back).unwrap();
            assert_eq!(back, list);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn adjacency_rejects_zero_gap_and_overflow() {
        // Hand-encode [3, 3]: first 3, gap 0.
        let mut buf = Vec::new();
        put_varint(&mut buf, 3);
        put_varint(&mut buf, 0);
        let mut out = Vec::new();
        assert!(get_adjacency(&buf, &mut 0, 2, &mut out).is_err());
        // First value above u32.
        let mut buf = Vec::new();
        put_varint(&mut buf, u64::from(u32::MAX) + 1);
        let mut out = Vec::new();
        assert!(get_adjacency(&buf, &mut 0, 1, &mut out).is_err());
        // Gap pushing past u32.
        let mut buf = Vec::new();
        put_varint(&mut buf, u64::from(u32::MAX));
        put_varint(&mut buf, 1);
        let mut out = Vec::new();
        assert!(get_adjacency(&buf, &mut 0, 2, &mut out).is_err());
    }

    #[test]
    fn nearby_ids_compress_to_single_bytes() {
        let list: Vec<u32> = (1_000_000..1_000_100).collect();
        let mut buf = Vec::new();
        put_adjacency(&mut buf, &list);
        // First id costs a few bytes, every gap of 1 costs exactly one.
        assert!(buf.len() <= 4 + (list.len() - 1), "len {}", buf.len());
    }
}
