//! Segment-store observability, following the `StoreMetrics`
//! detached/registered idiom. All series are prefixed `jxp_segstore_`
//! so exporters and dashboards pick them up alongside the store and
//! node families (see DESIGN.md §15 for the full table).

use std::sync::Arc;

use jxp_telemetry::{Counter, Gauge, Histogram, Registry};

/// Seconds buckets for segment fetch+decode durations. Segments are a
/// few hundred KB, so decodes sit in the 0.1–10 ms range warm and can
/// reach tens of ms cold.
const DECODE_BOUNDS: &[f64] = &[0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0];

/// Counters, gauges and histograms describing segment-cache activity.
///
/// A `SegstoreMetrics` either lives detached (tests, telemetry off) or
/// registered in a `jxp-telemetry` [`Registry`]. The counters are the
/// lock-free sharded kind, so bumping them per cache probe stays inside
/// the repo's <2% telemetry-overhead budget even when every PageRank
/// chunk touches the cache.
#[derive(Clone)]
pub struct SegstoreMetrics {
    /// Cache probes served from a resident segment.
    pub hits_total: Arc<Counter>,
    /// Cache probes that had to fetch and decode a segment.
    pub misses_total: Arc<Counter>,
    /// Resident segments evicted to stay within the budget.
    pub evictions_total: Arc<Counter>,
    /// Raw container bytes read from backing storage.
    pub read_bytes_total: Arc<Counter>,
    /// Decoded heap bytes currently resident in the cache.
    pub resident_bytes: Arc<Gauge>,
    /// Segments currently resident in the cache.
    pub resident_segments: Arc<Gauge>,
    /// Fetch+decode duration of a cache miss, in seconds.
    pub decode_seconds: Arc<Histogram>,
}

impl SegstoreMetrics {
    /// Standalone metrics, not attached to any registry.
    pub fn detached() -> Self {
        SegstoreMetrics {
            hits_total: Arc::new(Counter::new()),
            misses_total: Arc::new(Counter::new()),
            evictions_total: Arc::new(Counter::new()),
            read_bytes_total: Arc::new(Counter::new()),
            resident_bytes: Arc::new(Gauge::new()),
            resident_segments: Arc::new(Gauge::new()),
            decode_seconds: Arc::new(Histogram::new(DECODE_BOUNDS)),
        }
    }

    /// Metrics registered in `registry` under `jxp_segstore_*` names.
    pub fn registered(registry: &Registry) -> Self {
        SegstoreMetrics {
            hits_total: registry.counter("jxp_segstore_hits_total"),
            misses_total: registry.counter("jxp_segstore_misses_total"),
            evictions_total: registry.counter("jxp_segstore_evictions_total"),
            read_bytes_total: registry.counter("jxp_segstore_read_bytes_total"),
            resident_bytes: registry.gauge("jxp_segstore_resident_bytes"),
            resident_segments: registry.gauge("jxp_segstore_resident_segments"),
            decode_seconds: registry.histogram("jxp_segstore_decode_seconds", DECODE_BOUNDS),
        }
    }
}

impl Default for SegstoreMetrics {
    fn default() -> Self {
        SegstoreMetrics::detached()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registered_metrics_surface_in_snapshots() {
        let registry = Registry::new();
        let m = SegstoreMetrics::registered(&registry);
        m.hits_total.add(3);
        m.misses_total.inc();
        m.resident_bytes.set(4096.0);
        m.decode_seconds.observe(0.002);
        let snap = registry.snapshot();
        assert_eq!(snap.counters["jxp_segstore_hits_total"], 3);
        assert_eq!(snap.counters["jxp_segstore_misses_total"], 1);
        assert_eq!(snap.gauges["jxp_segstore_resident_bytes"], 4096.0);
        assert_eq!(snap.histograms["jxp_segstore_decode_seconds"].count(), 1);
    }

    #[test]
    fn detached_metrics_count_without_a_registry() {
        let m = SegstoreMetrics::detached();
        m.evictions_total.inc();
        assert_eq!(m.evictions_total.get(), 1);
    }
}
