//! How raw segment containers are fetched from storage.
//!
//! The cache does not care where container bytes come from; it talks to
//! a [`SegmentBacking`]. Two implementations ship:
//!
//! * [`ReadBacking`] opens and reads the whole segment file on every
//!   fault (`fs::read`). Zero kept state, one `open` syscall per fault.
//! * [`PreadBacking`] opens every segment file once and serves faults
//!   with positioned reads (`pread` on unix), trading file descriptors
//!   for open-per-fault syscalls — the right default when faults are
//!   frequent (small cache budgets).
//!
//! Both return the complete container; decoding always validates the
//! CRC afterwards, so a torn or swapped file is caught regardless of
//! backing. An mmap backing would slot in behind the same trait, but
//! the repo is dependency-free by policy and `std` has no mmap.

use std::fs::{self, File};
use std::path::{Path, PathBuf};

use crate::manifest::segment_file_name;
use crate::SegStoreError;

/// Fetches raw segment container bytes by segment index.
pub trait SegmentBacking: Send + Sync {
    /// Number of segments this backing can fetch.
    fn segment_count(&self) -> usize;

    /// Fetch the complete container bytes of segment `idx`.
    fn fetch(&self, idx: usize) -> Result<Vec<u8>, SegStoreError>;
}

/// Which [`SegmentBacking`] a `SegmentedGraph` should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackingKind {
    /// Whole-file `fs::read` per fault ([`ReadBacking`]).
    Read,
    /// Positioned reads on files opened once ([`PreadBacking`]).
    Pread,
}

/// Whole-file read per fault.
pub struct ReadBacking {
    paths: Vec<PathBuf>,
}

impl ReadBacking {
    /// Backing for `count` segments in `dir` (standard file names).
    pub fn new(dir: &Path, count: usize) -> Self {
        ReadBacking {
            paths: (0..count).map(|i| dir.join(segment_file_name(i))).collect(),
        }
    }
}

impl SegmentBacking for ReadBacking {
    fn segment_count(&self) -> usize {
        self.paths.len()
    }

    fn fetch(&self, idx: usize) -> Result<Vec<u8>, SegStoreError> {
        Ok(fs::read(&self.paths[idx])?)
    }
}

/// Positioned reads on segment files opened once at construction.
pub struct PreadBacking {
    files: Vec<(File, u64)>,
}

impl PreadBacking {
    /// Open all `count` segment files in `dir`.
    pub fn open(dir: &Path, count: usize) -> Result<Self, SegStoreError> {
        let mut files = Vec::with_capacity(count);
        for i in 0..count {
            let f = File::open(dir.join(segment_file_name(i)))?;
            let len = f.metadata()?.len();
            files.push((f, len));
        }
        Ok(PreadBacking { files })
    }
}

impl SegmentBacking for PreadBacking {
    fn segment_count(&self) -> usize {
        self.files.len()
    }

    #[cfg(unix)]
    fn fetch(&self, idx: usize) -> Result<Vec<u8>, SegStoreError> {
        use std::os::unix::fs::FileExt;
        let (f, len) = &self.files[idx];
        let mut buf = vec![0u8; *len as usize];
        f.read_exact_at(&mut buf, 0)?;
        Ok(buf)
    }

    #[cfg(not(unix))]
    fn fetch(&self, idx: usize) -> Result<Vec<u8>, SegStoreError> {
        // No positioned reads without a cursor off unix; fall back to a
        // plain read through the already-open handle's metadata path.
        let (f, _) = &self.files[idx];
        let mut clone = f.try_clone()?;
        use std::io::{Read, Seek, SeekFrom};
        clone.seek(SeekFrom::Start(0))?;
        let mut buf = Vec::new();
        clone.read_to_end(&mut buf)?;
        Ok(buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dir_with_segments(name: &str, contents: &[&[u8]]) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("jxp_backing_{name}"));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        for (i, c) in contents.iter().enumerate() {
            fs::write(dir.join(segment_file_name(i)), c).unwrap();
        }
        dir
    }

    #[test]
    fn read_backing_fetches_each_file() {
        let dir = dir_with_segments("read", &[b"alpha", b"bravo"]);
        let b = ReadBacking::new(&dir, 2);
        assert_eq!(b.segment_count(), 2);
        assert_eq!(b.fetch(0).unwrap(), b"alpha");
        assert_eq!(b.fetch(1).unwrap(), b"bravo");
    }

    #[test]
    fn pread_backing_fetches_each_file_repeatedly() {
        let dir = dir_with_segments("pread", &[b"first", b"second segment"]);
        let b = PreadBacking::open(&dir, 2).unwrap();
        assert_eq!(b.segment_count(), 2);
        for _ in 0..3 {
            assert_eq!(b.fetch(0).unwrap(), b"first");
            assert_eq!(b.fetch(1).unwrap(), b"second segment");
        }
    }

    #[test]
    fn pread_backing_reports_missing_files_at_open() {
        let dir = dir_with_segments("missing", &[b"only one"]);
        assert!(PreadBacking::open(&dir, 2).is_err());
    }
}
