//! The `JXPM` directory manifest: what a segment directory contains.
//!
//! One manifest file ties a directory of `JXPS` segments together:
//!
//! ```text
//! magic "JXPM" | version u32 | num_nodes u64 | num_edges u64
//! | nodes_per_segment u64 | num_segments u32
//! | per segment: nodes u64 | fwd_edges u64 | rev_edges u64 | encoded_len u64
//! | crc32 u32 (over everything before it)
//! ```
//!
//! Segment `i` covers global nodes `i * nodes_per_segment ..` and lives
//! in [`segment_file_name`]`(i)`. The manifest is written last, with the
//! same atomic install as the segments, so a directory with a readable
//! manifest always names fully-installed segments.

use crate::SegStoreError;
use jxp_store::{crc32, crc32_finish, crc32_update, CRC32_INIT};

/// Manifest file name inside a segment directory.
pub const MANIFEST_FILE: &str = "manifest.jxpm";
/// Magic bytes of the manifest.
pub const MANIFEST_MAGIC: [u8; 4] = *b"JXPM";
/// Manifest format version.
pub const MANIFEST_VERSION: u32 = 1;
/// Hard cap on the segment count, checked before allocating.
pub const MAX_SEGMENTS: usize = 1 << 20;

/// File name of segment `i` inside its directory.
pub fn segment_file_name(i: usize) -> String {
    format!("seg-{i:06}.jxps")
}

/// Per-segment sizes recorded in the manifest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentEntry {
    /// Nodes covered by this segment.
    pub nodes: u64,
    /// Forward (successor) edges stored.
    pub fwd_edges: u64,
    /// Reverse (predecessor) edges stored.
    pub rev_edges: u64,
    /// Size of the segment container file in bytes.
    pub encoded_len: u64,
}

/// A decoded segment-directory manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Total nodes in the graph (dense ids `0..num_nodes`).
    pub num_nodes: u64,
    /// Total directed edges.
    pub num_edges: u64,
    /// Nodes per segment (every segment but the last covers exactly
    /// this many).
    pub nodes_per_segment: u64,
    /// Per-segment sizes, in segment order.
    pub segments: Vec<SegmentEntry>,
}

impl Manifest {
    /// First global node id of segment `i`.
    pub fn segment_start(&self, i: usize) -> u64 {
        i as u64 * self.nodes_per_segment
    }

    /// Which segment holds node `v`.
    pub fn segment_of(&self, v: u64) -> usize {
        (v / self.nodes_per_segment) as usize
    }

    /// Total encoded (on-disk) size of all segments in bytes.
    pub fn total_encoded_bytes(&self) -> u64 {
        self.segments.iter().map(|s| s.encoded_len).sum()
    }
}

/// Serialize a manifest.
pub fn encode_manifest(m: &Manifest) -> Vec<u8> {
    assert!(m.segments.len() <= MAX_SEGMENTS);
    let mut out = Vec::with_capacity(32 + m.segments.len() * 32 + 4);
    out.extend_from_slice(&MANIFEST_MAGIC);
    out.extend_from_slice(&MANIFEST_VERSION.to_le_bytes());
    out.extend_from_slice(&m.num_nodes.to_le_bytes());
    out.extend_from_slice(&m.num_edges.to_le_bytes());
    out.extend_from_slice(&m.nodes_per_segment.to_le_bytes());
    out.extend_from_slice(&(m.segments.len() as u32).to_le_bytes());
    for s in &m.segments {
        out.extend_from_slice(&s.nodes.to_le_bytes());
        out.extend_from_slice(&s.fwd_edges.to_le_bytes());
        out.extend_from_slice(&s.rev_edges.to_le_bytes());
        out.extend_from_slice(&s.encoded_len.to_le_bytes());
    }
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

fn get_u32(bytes: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap())
}

fn get_u64(bytes: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap())
}

/// Decode and validate a manifest.
pub fn decode_manifest(bytes: &[u8]) -> Result<Manifest, SegStoreError> {
    const FIXED: usize = 4 + 4 + 8 + 8 + 8 + 4;
    if bytes.len() < FIXED + 4 {
        return Err(SegStoreError::corrupt("truncated manifest"));
    }
    if bytes[0..4] != MANIFEST_MAGIC {
        return Err(SegStoreError::corrupt("bad manifest magic"));
    }
    if get_u32(bytes, 4) != MANIFEST_VERSION {
        return Err(SegStoreError::corrupt("unsupported manifest version"));
    }
    let num_nodes = get_u64(bytes, 8);
    let num_edges = get_u64(bytes, 16);
    let nodes_per_segment = get_u64(bytes, 24);
    let num_segments = get_u32(bytes, 32) as usize;
    if num_segments > MAX_SEGMENTS {
        return Err(SegStoreError::corrupt("manifest segment count exceeds cap"));
    }
    if bytes.len() != FIXED + num_segments * 32 + 4 {
        return Err(SegStoreError::corrupt("manifest length mismatch"));
    }
    let body = &bytes[..bytes.len() - 4];
    let crc = get_u32(bytes, bytes.len() - 4);
    if crc32_finish(crc32_update(CRC32_INIT, body)) != crc {
        return Err(SegStoreError::corrupt("manifest CRC mismatch"));
    }
    if nodes_per_segment == 0 && num_nodes > 0 {
        return Err(SegStoreError::corrupt(
            "manifest has zero nodes_per_segment",
        ));
    }
    let mut segments = Vec::with_capacity(num_segments);
    let mut covered: u64 = 0;
    let mut fwd_total: u64 = 0;
    for i in 0..num_segments {
        let off = FIXED + i * 32;
        let e = SegmentEntry {
            nodes: get_u64(bytes, off),
            fwd_edges: get_u64(bytes, off + 8),
            rev_edges: get_u64(bytes, off + 16),
            encoded_len: get_u64(bytes, off + 24),
        };
        covered += e.nodes;
        fwd_total += e.fwd_edges;
        segments.push(e);
    }
    if covered != num_nodes {
        return Err(SegStoreError::corrupt("manifest node counts inconsistent"));
    }
    if fwd_total != num_edges {
        return Err(SegStoreError::corrupt("manifest edge counts inconsistent"));
    }
    Ok(Manifest {
        num_nodes,
        num_edges,
        nodes_per_segment,
        segments,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        Manifest {
            num_nodes: 10,
            num_edges: 7,
            nodes_per_segment: 4,
            segments: vec![
                SegmentEntry {
                    nodes: 4,
                    fwd_edges: 3,
                    rev_edges: 2,
                    encoded_len: 100,
                },
                SegmentEntry {
                    nodes: 4,
                    fwd_edges: 4,
                    rev_edges: 5,
                    encoded_len: 120,
                },
                SegmentEntry {
                    nodes: 2,
                    fwd_edges: 0,
                    rev_edges: 0,
                    encoded_len: 60,
                },
            ],
        }
    }

    #[test]
    fn round_trips() {
        let m = sample();
        let bytes = encode_manifest(&m);
        assert_eq!(decode_manifest(&bytes).unwrap(), m);
        assert_eq!(m.total_encoded_bytes(), 280);
        assert_eq!(m.segment_of(0), 0);
        assert_eq!(m.segment_of(7), 1);
        assert_eq!(m.segment_of(9), 2);
        assert_eq!(m.segment_start(2), 8);
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let good = encode_manifest(&sample());
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0x01;
            assert!(
                decode_manifest(&bad).is_err(),
                "flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn truncation_is_detected() {
        let good = encode_manifest(&sample());
        for cut in [0, 4, good.len() - 1] {
            assert!(decode_manifest(&good[..cut]).is_err());
        }
    }

    #[test]
    fn segment_file_names_sort_in_segment_order() {
        assert_eq!(segment_file_name(0), "seg-000000.jxps");
        assert_eq!(segment_file_name(42), "seg-000042.jxps");
        assert!(segment_file_name(9) < segment_file_name(10));
    }
}
