#![deny(missing_docs)]
//! # jxp-segstore
//!
//! Disk-backed segmented webgraph for out-of-core PageRank.
//!
//! Every graph in the repo used to live in RAM as a `CsrGraph`, capping
//! experiments far below web-crawl scale. This crate partitions a graph
//! into **fixed node-range segments**, each serialized as a CRC-checked
//! `JXPS` container (same header/CRC/atomic-install discipline as
//! `jxp-store`'s checkpoints) holding **delta-varint-encoded adjacency**
//! in both directions plus a degree index, and demand-loads them behind
//! an **LRU cache** with a hard resident-segment budget.
//!
//! The pieces:
//!
//! * [`codec`] — LEB128 varints and delta encoding of sorted adjacency,
//! * [`segment`] — the `JXPS` container: encode/decode one node range,
//! * [`manifest`] — the `JXPM` directory manifest tying segments together,
//! * [`writer`] — [`SegmentWriter`], a streaming spill-based builder whose
//!   memory use is bounded by one segment, plus [`write_segments`] for
//!   graphs already in memory,
//! * [`backing`] — [`SegmentBacking`]: how raw container bytes are
//!   fetched (whole-file reads or positioned reads on kept-open files),
//! * [`cache`] — the budgeted LRU of decoded segments, instrumented with
//!   `jxp_segstore_*` telemetry (hits, misses, evictions, decode time,
//!   resident bytes),
//! * [`graph`] — [`SegmentedGraph`], the `GraphSource` implementation that
//!   makes all of `jxp-pagerank` / `jxp-core` run out-of-core, and
//!   [`verify_dir`] for CRC-checking every segment.
//!
//! Determinism: a decoded segment reproduces exactly the sorted,
//! deduplicated adjacency a `CsrGraph` would hold for the same edges, and
//! iteration is always in ascending id order, so PageRank over a
//! [`SegmentedGraph`] is **bit-identical** to the in-memory path at any
//! thread count and any cache budget (see DESIGN.md §15).

pub mod backing;
pub mod cache;
pub mod codec;
pub mod graph;
pub mod manifest;
pub mod metrics;
pub mod segment;
pub mod writer;

pub use backing::{BackingKind, SegmentBacking};
pub use cache::SegmentCache;
pub use graph::{verify_dir, SegStoreConfig, SegmentedGraph, VerifyReport};
pub use manifest::{Manifest, SegmentEntry, MANIFEST_FILE};
pub use metrics::SegstoreMetrics;
pub use segment::DecodedSegment;
pub use writer::{write_segments, SegmentWriter};

/// Errors surfaced by the segment store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SegStoreError {
    /// The underlying filesystem failed.
    Io(String),
    /// Persisted bytes failed validation (CRC, framing, codec bounds).
    Corrupt(String),
}

impl SegStoreError {
    pub(crate) fn corrupt(msg: impl Into<String>) -> Self {
        SegStoreError::Corrupt(msg.into())
    }
}

impl std::fmt::Display for SegStoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SegStoreError::Io(msg) => write!(f, "segstore I/O error: {msg}"),
            SegStoreError::Corrupt(msg) => write!(f, "segstore corruption: {msg}"),
        }
    }
}

impl std::error::Error for SegStoreError {}

impl From<std::io::Error> for SegStoreError {
    fn from(e: std::io::Error) -> Self {
        SegStoreError::Io(e.to_string())
    }
}
