//! [`SegmentedGraph`]: the out-of-core [`GraphSource`].
//!
//! Opens a segment directory (manifest + `JXPS` containers) and serves
//! the `GraphSource` contract by faulting segments through the LRU
//! [`SegmentCache`]. Because a decoded segment holds exactly the
//! sorted, deduplicated adjacency a `CsrGraph` of the same edges would
//! hold, and iteration is always ascending, every consumer — fragment
//! extraction, pull-based power iteration, per-peer extended-graph
//! PageRank — produces **bit-identical** results against either
//! backend, at any thread count and any cache budget.
//!
//! [`verify_dir`] is the integrity sweep behind `jxp graph verify`:
//! decode every segment (full CRC + codec validation) and cross-check
//! it against the manifest.

use std::path::Path;
use std::sync::Arc;

use jxp_webgraph::{GraphSource, PageId};

use crate::backing::{BackingKind, PreadBacking, ReadBacking, SegmentBacking};
use crate::cache::SegmentCache;
use crate::manifest::{decode_manifest, segment_file_name, Manifest, MANIFEST_FILE};
use crate::metrics::SegstoreMetrics;
use crate::segment::{decode_segment, DecodedSegment};
use crate::SegStoreError;

/// How a [`SegmentedGraph`] faults and caches segments.
#[derive(Debug, Clone, Copy)]
pub struct SegStoreConfig {
    /// Maximum decoded segments resident at once (the out-of-core
    /// memory cap). Must be ≥ 1.
    pub resident_segments: usize,
    /// How raw container bytes are fetched.
    pub backing: BackingKind,
}

impl Default for SegStoreConfig {
    fn default() -> Self {
        SegStoreConfig {
            resident_segments: 8,
            backing: BackingKind::Pread,
        }
    }
}

/// A disk-backed graph served segment-by-segment through an LRU cache.
pub struct SegmentedGraph {
    manifest: Manifest,
    cache: SegmentCache,
}

impl SegmentedGraph {
    /// Open the segment directory at `dir` with default config and
    /// detached metrics.
    pub fn open(dir: &Path) -> Result<Self, SegStoreError> {
        Self::open_with(dir, SegStoreConfig::default(), SegstoreMetrics::detached())
    }

    /// Open with an explicit cache config and metrics destination.
    pub fn open_with(
        dir: &Path,
        config: SegStoreConfig,
        metrics: SegstoreMetrics,
    ) -> Result<Self, SegStoreError> {
        let manifest = decode_manifest(&std::fs::read(dir.join(MANIFEST_FILE))?)?;
        let count = manifest.segments.len();
        let backing: Box<dyn SegmentBacking> = match config.backing {
            BackingKind::Read => Box::new(ReadBacking::new(dir, count)),
            BackingKind::Pread => Box::new(PreadBacking::open(dir, count)?),
        };
        Ok(SegmentedGraph {
            manifest,
            cache: SegmentCache::new(backing, config.resident_segments, metrics),
        })
    }

    /// The directory manifest.
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// Total on-disk (encoded) size of all segments in bytes.
    pub fn total_encoded_bytes(&self) -> u64 {
        self.manifest.total_encoded_bytes()
    }

    /// Decoded heap bytes currently resident in the cache.
    pub fn resident_bytes(&self) -> u64 {
        self.cache.resident_bytes()
    }

    /// The metrics the cache reports into.
    pub fn metrics(&self) -> &SegstoreMetrics {
        self.cache.metrics()
    }

    /// Fault in the segment holding node `v` and return it.
    fn segment_for(&self, v: PageId) -> (Arc<DecodedSegment>, usize) {
        let seg = self.manifest.segment_of(u64::from(v.0));
        let decoded = self
            .cache
            .get(seg)
            .unwrap_or_else(|e| panic!("segment {seg} unreadable: {e}"));
        let local = (u64::from(v.0) - decoded.start) as usize;
        (decoded, local)
    }
}

impl GraphSource for SegmentedGraph {
    fn num_nodes(&self) -> usize {
        self.manifest.num_nodes as usize
    }

    fn num_edges(&self) -> usize {
        self.manifest.num_edges as usize
    }

    fn out_degree(&self, v: PageId) -> usize {
        let (seg, i) = self.segment_for(v);
        (seg.fwd_off[i + 1] - seg.fwd_off[i]) as usize
    }

    fn for_each_successor<F: FnMut(PageId)>(&self, v: PageId, mut f: F) {
        let (seg, i) = self.segment_for(v);
        for &u in seg.successors_at(i) {
            f(PageId(u));
        }
    }

    fn for_each_predecessor<F: FnMut(PageId)>(&self, v: PageId, mut f: F) {
        let (seg, i) = self.segment_for(v);
        for &u in seg.predecessors_at(i) {
            f(PageId(u));
        }
    }
}

/// One segment's verification outcome.
#[derive(Debug)]
pub struct SegmentStatus {
    /// Segment index.
    pub index: usize,
    /// Nodes covered (from the manifest).
    pub nodes: u64,
    /// Container size on disk in bytes.
    pub encoded_len: u64,
    /// `None` if the segment decoded cleanly and matches the manifest;
    /// otherwise the failure description.
    pub error: Option<String>,
}

/// Result of CRC-verifying a whole segment directory.
#[derive(Debug)]
pub struct VerifyReport {
    /// The decoded manifest.
    pub manifest: Manifest,
    /// Per-segment outcomes, in segment order.
    pub segments: Vec<SegmentStatus>,
}

impl VerifyReport {
    /// Number of segments that failed verification.
    pub fn broken(&self) -> usize {
        self.segments.iter().filter(|s| s.error.is_some()).count()
    }
}

/// Decode and fully validate every segment in `dir` against its
/// manifest. Reads one segment at a time, so verification of a graph
/// far larger than memory is fine. An unreadable or corrupt manifest
/// is an `Err`; per-segment corruption is reported in the result.
pub fn verify_dir(dir: &Path) -> Result<VerifyReport, SegStoreError> {
    let manifest = decode_manifest(&std::fs::read(dir.join(MANIFEST_FILE))?)?;
    let mut segments = Vec::with_capacity(manifest.segments.len());
    for (i, entry) in manifest.segments.iter().enumerate() {
        let error = check_segment(dir, &manifest, i)
            .err()
            .map(|e| e.to_string());
        segments.push(SegmentStatus {
            index: i,
            nodes: entry.nodes,
            encoded_len: entry.encoded_len,
            error,
        });
    }
    Ok(VerifyReport { manifest, segments })
}

fn check_segment(dir: &Path, manifest: &Manifest, i: usize) -> Result<(), SegStoreError> {
    let entry = &manifest.segments[i];
    let bytes = std::fs::read(dir.join(segment_file_name(i)))?;
    let seg = decode_segment(&bytes)?;
    if seg.index as usize != i
        || seg.start != manifest.segment_start(i)
        || seg.num_nodes() as u64 != entry.nodes
        || seg.fwd_adj.len() as u64 != entry.fwd_edges
        || seg.rev_adj.len() as u64 != entry.rev_edges
        || bytes.len() as u64 != entry.encoded_len
    {
        return Err(SegStoreError::corrupt(
            "segment disagrees with manifest entry",
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::write_segments;
    use jxp_webgraph::{CsrGraph, GraphBuilder};
    use std::fs;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("jxp_seggraph_{name}"));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_graph() -> CsrGraph {
        let mut b = GraphBuilder::new();
        b.ensure_nodes(23); // deliberately not a multiple of the segment size
        for i in 0..23u32 {
            if i % 5 == 4 {
                continue; // dangling
            }
            b.add_edge(PageId(i), PageId((i + 1) % 23));
            b.add_edge(PageId(i), PageId((i * 7 + 2) % 23));
        }
        b.build()
    }

    fn open_both(name: &str, kind: BackingKind) -> (CsrGraph, SegmentedGraph) {
        let dir = tmp(name);
        let g = sample_graph();
        write_segments(&g, &dir, 4).unwrap();
        let sg = SegmentedGraph::open_with(
            &dir,
            SegStoreConfig {
                resident_segments: 2,
                backing: kind,
            },
            SegstoreMetrics::detached(),
        )
        .unwrap();
        (g, sg)
    }

    fn assert_source_equal(g: &CsrGraph, sg: &SegmentedGraph) {
        assert_eq!(GraphSource::num_nodes(sg), g.num_nodes());
        assert_eq!(GraphSource::num_edges(sg), g.num_edges());
        for v in g.nodes() {
            assert_eq!(GraphSource::out_degree(sg, v), g.out_degree(v), "{v}");
            let mut succ = Vec::new();
            sg.for_each_successor(v, |u| succ.push(u));
            assert_eq!(succ, g.successors(v).collect::<Vec<_>>(), "succ {v}");
            let mut pred = Vec::new();
            sg.for_each_predecessor(v, |u| pred.push(u));
            assert_eq!(pred, g.predecessors(v).collect::<Vec<_>>(), "pred {v}");
        }
        assert_eq!(
            GraphSource::dangling(sg),
            g.dangling_nodes().collect::<Vec<_>>()
        );
    }

    #[test]
    fn adjacency_matches_csr_with_pread_backing() {
        let (g, sg) = open_both("pread", BackingKind::Pread);
        assert_source_equal(&g, &sg);
        // The 2-segment budget over 6 segments forced eviction churn.
        assert!(sg.metrics().evictions_total.get() > 0);
        assert!(sg.resident_bytes() > 0);
        assert!(sg.total_encoded_bytes() > 0);
    }

    #[test]
    fn adjacency_matches_csr_with_read_backing() {
        let (g, sg) = open_both("read", BackingKind::Read);
        assert_source_equal(&g, &sg);
    }

    #[test]
    fn verify_reports_clean_directory() {
        let dir = tmp("verify_clean");
        write_segments(&sample_graph(), &dir, 4).unwrap();
        let report = verify_dir(&dir).unwrap();
        assert_eq!(report.broken(), 0);
        assert_eq!(report.segments.len(), 6);
    }

    #[test]
    fn verify_detects_any_single_byte_flip() {
        let dir = tmp("verify_flip");
        write_segments(&sample_graph(), &dir, 4).unwrap();
        let target = dir.join(segment_file_name(3));
        let good = fs::read(&target).unwrap();
        // Flip a byte in the middle of the container.
        let mut bad = good.clone();
        bad[good.len() / 2] ^= 0x10;
        fs::write(&target, &bad).unwrap();
        let report = verify_dir(&dir).unwrap();
        assert_eq!(report.broken(), 1);
        assert!(report.segments[3].error.is_some());
        assert!(report.segments[0].error.is_none());
    }

    #[test]
    fn verify_detects_truncated_segment() {
        let dir = tmp("verify_trunc");
        write_segments(&sample_graph(), &dir, 4).unwrap();
        let target = dir.join(segment_file_name(0));
        let good = fs::read(&target).unwrap();
        fs::write(&target, &good[..good.len() - 1]).unwrap();
        assert_eq!(verify_dir(&dir).unwrap().broken(), 1);
    }

    #[test]
    fn open_rejects_missing_manifest() {
        let dir = tmp("no_manifest");
        fs::create_dir_all(&dir).unwrap();
        assert!(SegmentedGraph::open(&dir).is_err());
    }

    #[test]
    fn open_rejects_corrupt_manifest() {
        let dir = tmp("bad_manifest");
        write_segments(&sample_graph(), &dir, 4).unwrap();
        let path = dir.join(MANIFEST_FILE);
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        fs::write(&path, &bytes).unwrap();
        assert!(SegmentedGraph::open(&dir).is_err());
    }
}
