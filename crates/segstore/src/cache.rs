//! Budgeted LRU cache of decoded segments.
//!
//! The cache is the only thing standing between the power iteration and
//! one disk fault per adjacency access, and the **resident-segment
//! budget** is the out-of-core guarantee: at most `budget` decoded
//! segments exist at once, no matter how large the graph is, so
//! resident graph memory is capped at roughly
//! `budget × segment_decoded_size` while the graph itself only exists
//! on disk.
//!
//! Concurrency model: one mutex guards the whole cache. Hits hold it
//! for a map probe and an `Arc` clone; misses hold it across the fetch
//! and decode, which serializes faults (two workers asking for the same
//! segment decode it once, and the budget can never be transiently
//! exceeded by concurrent faults). Consumers keep the returned
//! `Arc<DecodedSegment>` alive while iterating, so eviction never
//! invalidates adjacency mid-walk — it just drops the cache's
//! reference.
//!
//! Cache state never influences *what* callers read, only how fast it
//! arrives, which is why scores stay bit-identical under any budget.
//
// jxp-analyze: allow-file(D2, reason = "Instant::now feeds the jxp_segstore_decode_seconds histogram only; fetch timing never influences which bytes are returned or any score accounting")

use std::sync::{Arc, Mutex};
use std::time::Instant;

use jxp_telemetry::lock_unpoisoned;

use crate::backing::SegmentBacking;
use crate::metrics::SegstoreMetrics;
use crate::segment::{decode_segment, DecodedSegment};
use crate::SegStoreError;

struct Slot {
    seg: Arc<DecodedSegment>,
    /// Logical access clock value of the most recent hit.
    stamp: u64,
}

struct CacheState {
    /// One entry per segment; `Some` while resident.
    slots: Vec<Option<Slot>>,
    /// Logical access clock: bumped on every probe.
    tick: u64,
    resident: usize,
    resident_bytes: u64,
}

/// A budgeted LRU cache of decoded segments over a [`SegmentBacking`].
pub struct SegmentCache {
    backing: Box<dyn SegmentBacking>,
    budget: usize,
    metrics: SegstoreMetrics,
    state: Mutex<CacheState>,
}

impl SegmentCache {
    /// Cache at most `budget` decoded segments of `backing`.
    ///
    /// # Panics
    /// Panics if `budget` is zero — a cache that can hold nothing
    /// cannot hand out a segment at all.
    pub fn new(backing: Box<dyn SegmentBacking>, budget: usize, metrics: SegstoreMetrics) -> Self {
        assert!(budget > 0, "segment cache budget must be at least 1");
        let n = backing.segment_count();
        SegmentCache {
            backing,
            budget,
            metrics,
            state: Mutex::new(CacheState {
                slots: (0..n).map(|_| None).collect(),
                tick: 0,
                resident: 0,
                resident_bytes: 0,
            }),
        }
    }

    /// Maximum resident segments.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// The metrics this cache reports into.
    pub fn metrics(&self) -> &SegstoreMetrics {
        &self.metrics
    }

    /// Decoded heap bytes currently resident.
    pub fn resident_bytes(&self) -> u64 {
        lock_unpoisoned(&self.state).resident_bytes
    }

    /// Segments currently resident.
    pub fn resident_segments(&self) -> usize {
        lock_unpoisoned(&self.state).resident
    }

    /// Get segment `idx`, faulting it in (and evicting the least
    /// recently used resident segment) if necessary.
    pub fn get(&self, idx: usize) -> Result<Arc<DecodedSegment>, SegStoreError> {
        let mut state = lock_unpoisoned(&self.state);
        state.tick += 1;
        let tick = state.tick;
        if let Some(slot) = state.slots[idx].as_mut() {
            slot.stamp = tick;
            self.metrics.hits_total.inc();
            return Ok(Arc::clone(&slot.seg));
        }

        self.metrics.misses_total.inc();
        let fetch_start = Instant::now();
        let bytes = self.backing.fetch(idx)?;
        self.metrics.read_bytes_total.add(bytes.len() as u64);
        let seg = Arc::new(decode_segment(&bytes)?);
        self.metrics
            .decode_seconds
            .observe(fetch_start.elapsed().as_secs_f64());

        if state.resident >= self.budget {
            // Evict the least-recently-used resident segment. The scan
            // is O(num_segments); budgets are small and misses already
            // pay a disk read, so simplicity wins over an intrusive
            // list.
            let victim = state
                .slots
                .iter()
                .enumerate()
                .filter_map(|(i, s)| s.as_ref().map(|s| (s.stamp, i)))
                .min()
                .map(|(_, i)| i)
                .expect("resident > 0 implies a victim exists");
            let gone = state.slots[victim].take().expect("victim is resident");
            state.resident -= 1;
            state.resident_bytes -= gone.seg.resident_bytes() as u64;
            self.metrics.evictions_total.inc();
        }

        state.resident += 1;
        state.resident_bytes += seg.resident_bytes() as u64;
        state.slots[idx] = Some(Slot {
            seg: Arc::clone(&seg),
            stamp: tick,
        });
        self.metrics.resident_bytes.set(state.resident_bytes as f64);
        self.metrics.resident_segments.set(state.resident as f64);
        Ok(seg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::encode_segment;

    /// A backing serving generated single-node segments from memory,
    /// counting fetches.
    struct MemBacking {
        containers: Vec<Vec<u8>>,
        fetches: std::sync::atomic::AtomicU64,
    }

    impl MemBacking {
        fn new(n: usize) -> Self {
            MemBacking {
                containers: (0..n)
                    .map(|i| {
                        // Node i with successor i+1, no predecessors.
                        encode_segment(i as u32, i as u64, &[0, 1], &[i as u32 + 1], &[0, 0], &[])
                    })
                    .collect(),
                fetches: std::sync::atomic::AtomicU64::new(0),
            }
        }
    }

    impl SegmentBacking for MemBacking {
        fn segment_count(&self) -> usize {
            self.containers.len()
        }

        fn fetch(&self, idx: usize) -> Result<Vec<u8>, SegStoreError> {
            self.fetches
                .fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            Ok(self.containers[idx].clone())
        }
    }

    #[test]
    fn hits_do_not_refetch() {
        let cache = SegmentCache::new(Box::new(MemBacking::new(3)), 2, SegstoreMetrics::detached());
        let a = cache.get(0).unwrap();
        let b = cache.get(0).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.metrics().hits_total.get(), 1);
        assert_eq!(cache.metrics().misses_total.get(), 1);
    }

    #[test]
    fn budget_is_never_exceeded_and_lru_is_evicted() {
        let cache = SegmentCache::new(Box::new(MemBacking::new(4)), 2, SegstoreMetrics::detached());
        cache.get(0).unwrap();
        cache.get(1).unwrap();
        cache.get(0).unwrap(); // 0 is now more recent than 1
        cache.get(2).unwrap(); // evicts 1
        assert_eq!(cache.resident_segments(), 2);
        assert_eq!(cache.metrics().evictions_total.get(), 1);
        // 0 must still be resident (hit), 1 must refetch (miss).
        let misses_before = cache.metrics().misses_total.get();
        cache.get(0).unwrap();
        assert_eq!(cache.metrics().misses_total.get(), misses_before);
        cache.get(1).unwrap();
        assert_eq!(cache.metrics().misses_total.get(), misses_before + 1);
    }

    #[test]
    fn resident_bytes_track_evictions() {
        let cache = SegmentCache::new(Box::new(MemBacking::new(3)), 1, SegstoreMetrics::detached());
        cache.get(0).unwrap();
        let one = cache.resident_bytes();
        assert!(one > 0);
        cache.get(1).unwrap();
        assert_eq!(cache.resident_bytes(), one); // same-sized segment swapped in
        assert_eq!(cache.resident_segments(), 1);
    }

    #[test]
    fn evicted_segments_stay_valid_while_held() {
        let cache = SegmentCache::new(Box::new(MemBacking::new(3)), 1, SegstoreMetrics::detached());
        let held = cache.get(0).unwrap();
        cache.get(1).unwrap(); // evicts 0 from the cache
        assert_eq!(held.successors_at(0), &[1]); // but our Arc still works
    }

    #[test]
    #[should_panic(expected = "budget must be at least 1")]
    fn zero_budget_panics() {
        let _ = SegmentCache::new(Box::new(MemBacking::new(1)), 0, SegstoreMetrics::detached());
    }

    #[test]
    fn corrupt_container_surfaces_as_error() {
        struct BadBacking;
        impl SegmentBacking for BadBacking {
            fn segment_count(&self) -> usize {
                1
            }
            fn fetch(&self, _idx: usize) -> Result<Vec<u8>, SegStoreError> {
                Ok(vec![0u8; 10])
            }
        }
        let cache = SegmentCache::new(Box::new(BadBacking), 1, SegstoreMetrics::detached());
        assert!(matches!(cache.get(0), Err(SegStoreError::Corrupt(_))));
    }
}
