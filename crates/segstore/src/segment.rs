//! The `JXPS` segment container: one contiguous node range of the
//! graph, forward and reverse adjacency, CRC-checked.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic "JXPS" | version u32 | seg_index u32 | start_node u64
//! | num_nodes u64 | fwd_edges u64 | rev_edges u64
//! | payload_len u32 | crc32 u32 | payload
//! ```
//!
//! The CRC (same polynomial/table as `jxp-store`'s checkpoints, via
//! `jxp_store`'s incremental crc32) covers **everything before it** —
//! the 48 header bytes — plus the payload, so a flip of any single
//! byte in the container is caught at decode time. The payload is four
//! varint sections:
//!
//! ```text
//! fwd degree per node | fwd adjacency per node (delta-varint)
//! | rev degree per node | rev adjacency per node (delta-varint)
//! ```
//!
//! Forward lists hold the successors of nodes in `start .. start+n`
//! (targets anywhere in the graph); reverse lists hold their
//! predecessors. Storing both directions per node range is what lets
//! pull-based PageRank (which walks predecessors) touch only the
//! segments of the nodes it is updating.
//!
//! Like `jxp-store`'s format module, every length is bounded **before**
//! any allocation, so a corrupt header cannot request gigabytes.

use crate::codec;
use crate::SegStoreError;
use jxp_store::{crc32_finish, crc32_update, CRC32_INIT};

/// CRC over the 48 header bytes before the crc field plus the payload.
fn container_crc(header_prefix: &[u8], payload: &[u8]) -> u32 {
    crc32_finish(crc32_update(
        crc32_update(CRC32_INIT, header_prefix),
        payload,
    ))
}

/// Magic bytes of a segment container.
pub const SEGMENT_MAGIC: [u8; 4] = *b"JXPS";
/// Container format version.
pub const SEGMENT_VERSION: u32 = 1;
/// Fixed header length in bytes.
pub const SEGMENT_HEADER_LEN: usize = 4 + 4 + 4 + 8 + 8 + 8 + 8 + 4 + 4;
/// Hard cap on nodes per segment, checked before allocating.
pub const MAX_SEGMENT_NODES: usize = 1 << 24;
/// Hard cap on one segment's encoded payload (matches the spirit of
/// `jxp_store::MAX_PAYLOAD_LEN`), checked before allocating.
pub const MAX_SEGMENT_PAYLOAD: usize = 256 << 20;

/// A segment decoded into a mini-CSR over its node range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedSegment {
    /// Index of this segment in the directory.
    pub index: u32,
    /// First global node id covered.
    pub start: u64,
    /// `fwd_off[i]..fwd_off[i+1]` indexes `fwd_adj` with the successors
    /// of global node `start + i` (ascending global ids).
    pub fwd_off: Vec<u32>,
    /// Successor ids, concatenated.
    pub fwd_adj: Vec<u32>,
    /// As `fwd_off`, for predecessors.
    pub rev_off: Vec<u32>,
    /// Predecessor ids, concatenated.
    pub rev_adj: Vec<u32>,
    /// Size of the container this was decoded from, for cache
    /// accounting of on-disk (encoded) bytes.
    pub encoded_len: usize,
}

impl DecodedSegment {
    /// Nodes covered by this segment.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.fwd_off.len() - 1
    }

    /// Approximate resident heap size of the decoded form.
    pub fn resident_bytes(&self) -> usize {
        4 * (self.fwd_off.len() + self.fwd_adj.len() + self.rev_off.len() + self.rev_adj.len())
    }

    /// Successors of the `i`-th covered node (ascending).
    #[inline]
    pub fn successors_at(&self, i: usize) -> &[u32] {
        &self.fwd_adj[self.fwd_off[i] as usize..self.fwd_off[i + 1] as usize]
    }

    /// Predecessors of the `i`-th covered node (ascending).
    #[inline]
    pub fn predecessors_at(&self, i: usize) -> &[u32] {
        &self.rev_adj[self.rev_off[i] as usize..self.rev_off[i + 1] as usize]
    }
}

/// Encode one segment from per-range mini-CSR arrays.
///
/// `fwd_off`/`fwd_adj` (and the `rev` pair) describe nodes
/// `start .. start + (fwd_off.len() - 1)` exactly as in
/// [`DecodedSegment`]; every adjacency list must be sorted and
/// deduplicated.
///
/// # Panics
/// Panics if the arrays are inconsistent or exceed the format caps —
/// encoding is only reachable from the writer, which sizes segments.
pub fn encode_segment(
    index: u32,
    start: u64,
    fwd_off: &[u32],
    fwd_adj: &[u32],
    rev_off: &[u32],
    rev_adj: &[u32],
) -> Vec<u8> {
    assert!(!fwd_off.is_empty() && fwd_off.len() == rev_off.len());
    let n = fwd_off.len() - 1;
    assert!(n <= MAX_SEGMENT_NODES, "segment too large: {n} nodes");
    assert_eq!(*fwd_off.last().unwrap() as usize, fwd_adj.len());
    assert_eq!(*rev_off.last().unwrap() as usize, rev_adj.len());

    let mut payload = Vec::with_capacity(n + fwd_adj.len() * 2 + rev_adj.len() * 2);
    for i in 0..n {
        codec::put_varint(&mut payload, u64::from(fwd_off[i + 1] - fwd_off[i]));
    }
    for i in 0..n {
        codec::put_adjacency(
            &mut payload,
            &fwd_adj[fwd_off[i] as usize..fwd_off[i + 1] as usize],
        );
    }
    for i in 0..n {
        codec::put_varint(&mut payload, u64::from(rev_off[i + 1] - rev_off[i]));
    }
    for i in 0..n {
        codec::put_adjacency(
            &mut payload,
            &rev_adj[rev_off[i] as usize..rev_off[i + 1] as usize],
        );
    }
    assert!(
        payload.len() <= MAX_SEGMENT_PAYLOAD,
        "segment payload {} exceeds cap",
        payload.len()
    );

    let mut out = Vec::with_capacity(SEGMENT_HEADER_LEN + payload.len());
    out.extend_from_slice(&SEGMENT_MAGIC);
    out.extend_from_slice(&SEGMENT_VERSION.to_le_bytes());
    out.extend_from_slice(&index.to_le_bytes());
    out.extend_from_slice(&start.to_le_bytes());
    out.extend_from_slice(&(n as u64).to_le_bytes());
    out.extend_from_slice(&(fwd_adj.len() as u64).to_le_bytes());
    out.extend_from_slice(&(rev_adj.len() as u64).to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    let crc = container_crc(&out, &payload);
    out.extend_from_slice(&crc.to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

fn get_u32(bytes: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap())
}

fn get_u64(bytes: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap())
}

/// Decode and fully validate one segment container.
///
/// Checks, in order: header framing, magic/version, node/edge/payload
/// bounds (before allocating), payload length, CRC, then the varint
/// payload itself (degree sums must match the header's edge counts and
/// every adjacency list must be strictly increasing).
pub fn decode_segment(bytes: &[u8]) -> Result<DecodedSegment, SegStoreError> {
    if bytes.len() < SEGMENT_HEADER_LEN {
        return Err(SegStoreError::corrupt("truncated segment header"));
    }
    if bytes[0..4] != SEGMENT_MAGIC {
        return Err(SegStoreError::corrupt("bad segment magic"));
    }
    if get_u32(bytes, 4) != SEGMENT_VERSION {
        return Err(SegStoreError::corrupt("unsupported segment version"));
    }
    let index = get_u32(bytes, 8);
    let start = get_u64(bytes, 12);
    let n64 = get_u64(bytes, 20);
    let fwd_edges = get_u64(bytes, 28);
    let rev_edges = get_u64(bytes, 36);
    let payload_len = get_u32(bytes, 44) as usize;
    let crc = get_u32(bytes, 48);

    if n64 > MAX_SEGMENT_NODES as u64 {
        return Err(SegStoreError::corrupt("segment node count exceeds cap"));
    }
    let n = n64 as usize;
    if payload_len > MAX_SEGMENT_PAYLOAD {
        return Err(SegStoreError::corrupt("segment payload exceeds cap"));
    }
    if bytes.len() != SEGMENT_HEADER_LEN + payload_len {
        return Err(SegStoreError::corrupt("segment payload length mismatch"));
    }
    // Every edge endpoint costs at least one payload byte, so the edge
    // counts are bounded by the payload before we allocate for them.
    if fwd_edges > payload_len as u64 || rev_edges > payload_len as u64 {
        return Err(SegStoreError::corrupt("segment edge count exceeds payload"));
    }
    let payload = &bytes[SEGMENT_HEADER_LEN..];
    if container_crc(&bytes[..SEGMENT_HEADER_LEN - 4], payload) != crc {
        return Err(SegStoreError::corrupt("segment CRC mismatch"));
    }

    let mut pos = 0usize;
    let mut fwd_off = Vec::with_capacity(n + 1);
    fwd_off.push(0u32);
    let mut total: u64 = 0;
    for _ in 0..n {
        total += codec::get_varint(payload, &mut pos)?;
        if total > fwd_edges {
            return Err(SegStoreError::corrupt("fwd degree sum exceeds header"));
        }
        fwd_off.push(total as u32);
    }
    if total != fwd_edges {
        return Err(SegStoreError::corrupt("fwd degree sum below header"));
    }
    let mut fwd_adj = Vec::with_capacity(fwd_edges as usize);
    for i in 0..n {
        let deg = (fwd_off[i + 1] - fwd_off[i]) as usize;
        codec::get_adjacency(payload, &mut pos, deg, &mut fwd_adj)?;
    }

    let mut rev_off = Vec::with_capacity(n + 1);
    rev_off.push(0u32);
    let mut total: u64 = 0;
    for _ in 0..n {
        total += codec::get_varint(payload, &mut pos)?;
        if total > rev_edges {
            return Err(SegStoreError::corrupt("rev degree sum exceeds header"));
        }
        rev_off.push(total as u32);
    }
    if total != rev_edges {
        return Err(SegStoreError::corrupt("rev degree sum below header"));
    }
    let mut rev_adj = Vec::with_capacity(rev_edges as usize);
    for i in 0..n {
        let deg = (rev_off[i + 1] - rev_off[i]) as usize;
        codec::get_adjacency(payload, &mut pos, deg, &mut rev_adj)?;
    }

    if pos != payload.len() {
        return Err(SegStoreError::corrupt("trailing bytes in segment payload"));
    }

    Ok(DecodedSegment {
        index,
        start,
        fwd_off,
        fwd_adj,
        rev_off,
        rev_adj,
        encoded_len: bytes.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 3 nodes starting at global id 10: 10→{11,500}, 11→{}, 12→{10}.
    /// Reverse lists within the range: preds(10)={12}, preds(11)={10},
    /// preds(12)={}.
    fn sample() -> Vec<u8> {
        encode_segment(
            2,
            10,
            &[0, 2, 2, 3],
            &[11, 500, 10],
            &[0, 1, 2, 2],
            &[12, 10],
        )
    }

    #[test]
    fn round_trips() {
        let bytes = sample();
        let seg = decode_segment(&bytes).unwrap();
        assert_eq!(seg.index, 2);
        assert_eq!(seg.start, 10);
        assert_eq!(seg.num_nodes(), 3);
        assert_eq!(seg.successors_at(0), &[11, 500]);
        assert_eq!(seg.successors_at(1), &[] as &[u32]);
        assert_eq!(seg.successors_at(2), &[10]);
        assert_eq!(seg.predecessors_at(0), &[12]);
        assert_eq!(seg.predecessors_at(1), &[10]);
        assert_eq!(seg.encoded_len, bytes.len());
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let good = sample();
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0x40;
            assert!(
                decode_segment(&bad).is_err(),
                "flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn truncation_and_padding_are_detected() {
        let good = sample();
        for cut in [0, 1, SEGMENT_HEADER_LEN - 1, good.len() - 1] {
            assert!(decode_segment(&good[..cut]).is_err(), "cut at {cut}");
        }
        let mut padded = good.clone();
        padded.push(0);
        assert!(decode_segment(&padded).is_err());
    }

    #[test]
    fn huge_header_counts_are_rejected_before_allocation() {
        let mut bad = sample();
        // Claim u64::MAX nodes.
        bad[20..28].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(decode_segment(&bad).is_err());
        let mut bad = sample();
        // Claim u64::MAX forward edges.
        bad[28..36].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(decode_segment(&bad).is_err());
        let mut bad = sample();
        // Claim a payload length far past the actual buffer.
        bad[44..48].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_segment(&bad).is_err());
    }

    #[test]
    fn empty_segment_round_trips() {
        let bytes = encode_segment(0, 0, &[0, 0, 0], &[], &[0, 0, 0], &[]);
        let seg = decode_segment(&bytes).unwrap();
        assert_eq!(seg.num_nodes(), 2);
        assert_eq!(seg.successors_at(0), &[] as &[u32]);
        assert_eq!(seg.resident_bytes(), 4 * 6);
    }
}
