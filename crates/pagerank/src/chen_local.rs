//! Local PageRank estimation for a single page (Chen, Gan, Suel;
//! CIKM 2004).
//!
//! §2.2: "Chen et al. proposed a way of approximating the PR value of a
//! page locally, by expanding a small subgraph around the page of
//! interest, placing an estimated PR at the boundary nodes of the
//! subgraph, and running the standard algorithm. This approach assumes
//! that the full link structure is accessible at a dedicated graph
//! server." — in a P2P setting it would force peers to recursively query
//! for in-in-links, which is exactly the burden JXP avoids.
//!
//! This implementation is the baseline in its intended (centralized)
//! habitat: expand the in-link ball of the target up to a radius, treat
//! every unexpanded predecessor as a boundary source with an estimated
//! score, iterate PageRank on the ball only. The `baselines` experiment
//! contrasts its accuracy/expansion-cost curve with JXP's meetings.

use crate::power::PageRankConfig;
use jxp_webgraph::{CsrGraph, FxHashMap, PageId};
use std::collections::VecDeque;

/// Outcome of one local estimation.
#[derive(Debug, Clone)]
pub struct LocalEstimate {
    /// Estimated PageRank of the target page.
    pub score: f64,
    /// Pages expanded into the subgraph (the cost of the estimate: in a
    /// distributed setting each one is a remote "who links here?" query).
    pub expanded_pages: usize,
}

/// Estimate the PageRank of `target` from its in-link ball of the given
/// `radius`.
///
/// Boundary handling: predecessors of ball members that lie outside the
/// ball are assumed to hold the uniform score `1/N` (the estimate the
/// paper's simplest variant uses), contributing
/// `ε · (1/N) / out(pred)` of inflow per link, fixed across iterations.
///
/// # Panics
/// Panics if the graph is empty or config invalid.
pub fn estimate_pagerank(
    g: &CsrGraph,
    target: PageId,
    radius: usize,
    config: &PageRankConfig,
) -> LocalEstimate {
    config.validate();
    let n = g.num_nodes();
    assert!(n > 0, "empty graph");
    let uniform = 1.0 / n as f64;
    // ---- Collect the in-link ball by reverse BFS up to `radius`.
    let mut dist: FxHashMap<PageId, usize> = FxHashMap::default();
    dist.insert(target, 0);
    let mut queue = VecDeque::from([target]);
    while let Some(v) = queue.pop_front() {
        let d = dist[&v];
        if d == radius {
            continue;
        }
        for p in g.predecessors(v) {
            if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(p) {
                e.insert(d + 1);
                queue.push_back(p);
            }
        }
    }
    // jxp-analyze: allow(D1, reason = "the collected ids are sorted on the next line before any index is assigned")
    let mut members: Vec<PageId> = dist.keys().copied().collect();
    // Sort so member indices — and with them every accumulation order
    // below — are independent of hash iteration order.
    members.sort_unstable();
    let index: FxHashMap<PageId, usize> =
        members.iter().enumerate().map(|(i, &p)| (p, i)).collect();

    // ---- Fixed external inflow per member from unexpanded predecessors
    // (assumed to score 1/N each).
    let eps = config.epsilon;
    let mut external = vec![0.0f64; members.len()];
    for (i, &p) in members.iter().enumerate() {
        for pred in g.predecessors(p) {
            if !index.contains_key(&pred) {
                external[i] += eps * uniform / g.out_degree(pred) as f64;
            }
        }
    }

    // ---- Power iteration restricted to the ball. Members use their true
    // out-degree; links leaving the ball just leak (their mass is someone
    // else's problem — we only need the target's score). In-ball dangling
    // pages redistribute uniformly, matching the centralized treatment;
    // out-of-ball dangling mass is unknowable locally and ignored (part of
    // the method's approximation error).
    let dangling_members: Vec<usize> = members
        .iter()
        .enumerate()
        .filter(|&(_, &p)| g.out_degree(p) == 0)
        .map(|(i, _)| i)
        .collect();
    let mut curr = vec![uniform; members.len()];
    let mut next = vec![0.0f64; members.len()];
    for _ in 0..config.max_iterations {
        let dangling_mass: f64 = dangling_members.iter().map(|&i| curr[i]).sum();
        let base = (1.0 - eps) * uniform + eps * dangling_mass * uniform;
        let mut delta = 0.0;
        for (i, &p) in members.iter().enumerate() {
            let mut sum = 0.0;
            for pred in g.predecessors(p) {
                if let Some(&j) = index.get(&pred) {
                    sum += curr[j] / g.out_degree(pred) as f64;
                }
            }
            next[i] = base + eps * sum + external[i];
            delta += (next[i] - curr[i]).abs();
        }
        std::mem::swap(&mut curr, &mut next);
        if delta < config.tolerance {
            break;
        }
    }
    LocalEstimate {
        score: curr[index[&target]],
        expanded_pages: members.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{pagerank, PageRankConfig};
    use jxp_webgraph::generators::preferential_attachment;
    use jxp_webgraph::GraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn radius_zero_uses_only_boundary_estimates() {
        let mut b = GraphBuilder::new();
        for (s, d) in [(1, 0), (2, 0), (0, 1)] {
            b.add_edge(PageId(s), PageId(d));
        }
        let g = b.build();
        let est = estimate_pagerank(&g, PageId(0), 0, &PageRankConfig::default());
        assert_eq!(est.expanded_pages, 1);
        // (1−ε)/3 + ε·(1/3·(1/1) + 1/3·(1/1))… both in-links assumed 1/N.
        assert!(est.score > 0.0);
    }

    #[test]
    fn error_decreases_with_radius() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = preferential_attachment(400, 3, &mut rng);
        let cfg = PageRankConfig::default();
        let truth = pagerank(&g, &cfg);
        // The top authority is the interesting target.
        let target = truth.top_k(1)[0];
        let err_at = |radius: usize| {
            let est = estimate_pagerank(&g, target, radius, &cfg);
            (est.score - truth.score(target)).abs() / truth.score(target)
        };
        // The boundary estimate makes individual radii non-monotone, but
        // the trend must hold: a generous ball beats a bare one, and the
        // largest ball is nearly exact.
        let coarse = err_at(0);
        let fine = err_at(8);
        assert!(
            fine < coarse,
            "radius 8 ({fine}) should beat radius 0 ({coarse})"
        );
        assert!(fine < 0.05, "radius-8 estimate still {fine} off");
    }

    #[test]
    fn expansion_cost_grows_with_radius() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = preferential_attachment(400, 3, &mut rng);
        let cfg = PageRankConfig::default();
        let truth = pagerank(&g, &cfg);
        let target = truth.top_k(1)[0];
        let c1 = estimate_pagerank(&g, target, 1, &cfg).expanded_pages;
        let c3 = estimate_pagerank(&g, target, 3, &cfg).expanded_pages;
        assert!(c3 > c1, "{c3} vs {c1}");
    }

    #[test]
    fn full_radius_recovers_exact_score() {
        // A small strongly-connected graph: a large radius expands
        // everything and the estimate becomes exact.
        let mut b = GraphBuilder::new();
        for (s, d) in [(0, 1), (1, 2), (2, 0), (2, 3), (3, 0), (1, 3)] {
            b.add_edge(PageId(s), PageId(d));
        }
        let g = b.build();
        let cfg = PageRankConfig {
            tolerance: 1e-14,
            ..Default::default()
        };
        let truth = pagerank(&g, &cfg);
        for target in g.nodes() {
            let est = estimate_pagerank(&g, target, 10, &cfg);
            assert_eq!(est.expanded_pages, 4);
            assert!(
                (est.score - truth.score(target)).abs() < 1e-9,
                "{target:?}: {} vs {}",
                est.score,
                truth.score(target)
            );
        }
    }
}
