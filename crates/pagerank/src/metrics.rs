//! Ranking-comparison metrics, exactly as §6.2 of the paper defines them.
//!
//! * **Spearman's footrule distance** over the top-k of two rankings, with
//!   a page missing from one ranking placed at position `k + 1`, normalized
//!   to `[0, 1]` (0 = identical, 1 = disjoint).
//! * **Linear score error**: mean `|JXP score − PR score|` over the top-k
//!   pages *of the centralized PR ranking*.
//! * **Kendall's tau** and **top-k overlap** as supplementary diagnostics.

use crate::ranking::Ranking;
use jxp_webgraph::{FxHashMap, FxHashSet, PageId};

/// Spearman's footrule distance between the top-`k` prefixes of two
/// rankings, normalized to `[0, 1]`.
///
/// Following the paper: positions are 1-based within the top-k; a page
/// present in one top-k but not the other gets position `k + 1` in the
/// latter. The normalizer `k·(k+1)` is the distance of two disjoint
/// top-k lists, so disjoint lists score exactly 1.
///
/// # Panics
/// Panics if `k == 0`.
pub fn footrule_distance(a: &Ranking, b: &Ranking, k: usize) -> f64 {
    assert!(k > 0, "footrule over an empty prefix is undefined");
    let top_a = a.top_k(k);
    let top_b = b.top_k(k);
    let pos = |r: &Ranking, p: PageId| -> usize {
        match r.position(p) {
            Some(i) if i < k => i + 1, // 1-based
            _ => k + 1,
        }
    };
    // Sorted + deduped union (not a hash set): the summands are
    // integers so any order gives the same total, but a stable order
    // keeps the loop replayable and analyzer-rule-D1 clean.
    let mut union: Vec<PageId> = top_a.iter().chain(top_b.iter()).copied().collect();
    union.sort_unstable();
    union.dedup();
    let sum: usize = union.iter().map(|&p| pos(a, p).abs_diff(pos(b, p))).sum();
    sum as f64 / (k * (k + 1)) as f64
}

/// Linear score error: the average absolute difference between the
/// approximate score and the true score over the top-`k` pages **of the
/// true ranking** (the paper measures over "the top-k pages in the
/// centralized PR ranking"). A page without an approximate score
/// contributes its full true score (approximation 0).
///
/// # Panics
/// Panics if `k == 0` or the true ranking is empty.
pub fn linear_score_error(approx: &Ranking, truth: &Ranking, k: usize) -> f64 {
    assert!(k > 0, "linear score error over an empty prefix");
    let top = truth.top_k(k);
    assert!(!top.is_empty(), "true ranking is empty");
    let sum: f64 = top
        .iter()
        .map(|&p| {
            let t = truth
                .score(p)
                .expect("page from truth.top_k must be scored");
            let a = approx.score(p).unwrap_or(0.0);
            (t - a).abs()
        })
        .sum();
    sum / top.len() as f64
}

/// Fraction of the top-`k` of `truth` that also appears in the top-`k` of
/// `approx` (a.k.a. precision of the approximate top-k).
pub fn top_k_overlap(approx: &Ranking, truth: &Ranking, k: usize) -> f64 {
    assert!(k > 0, "overlap over an empty prefix");
    let top_t = truth.top_k(k);
    if top_t.is_empty() {
        return 1.0;
    }
    let set_a: FxHashSet<PageId> = approx.top_k(k).iter().copied().collect();
    let hits = top_t.iter().filter(|p| set_a.contains(p)).count();
    hits as f64 / top_t.len() as f64
}

/// Kendall's tau-a over the pages ranked by **both** rankings' top-`k`
/// prefixes: the fraction of concordant minus discordant pairs, in
/// `[-1, 1]`. Returns `None` if fewer than two common pages exist.
pub fn kendall_tau(a: &Ranking, b: &Ranking, k: usize) -> Option<f64> {
    let pos_a: FxHashMap<PageId, usize> = a
        .top_k(k)
        .iter()
        .enumerate()
        .map(|(i, &p)| (p, i))
        .collect();
    let common: Vec<(usize, usize)> = b
        .top_k(k)
        .iter()
        .enumerate()
        .filter_map(|(ib, &p)| pos_a.get(&p).map(|&ia| (ia, ib)))
        .collect();
    let n = common.len();
    if n < 2 {
        return None;
    }
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    for i in 0..n {
        for j in (i + 1)..n {
            let (a1, b1) = common[i];
            let (a2, b2) = common[j];
            let s = ((a1 as i64 - a2 as i64) * (b1 as i64 - b2 as i64)).signum();
            if s > 0 {
                concordant += 1;
            } else if s < 0 {
                discordant += 1;
            }
        }
    }
    let pairs = (n * (n - 1) / 2) as f64;
    Some((concordant - discordant) as f64 / pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ranking(pages: &[u32]) -> Ranking {
        // Score decreases with list position.
        Ranking::from_scores(
            pages
                .iter()
                .enumerate()
                .map(|(i, &p)| (PageId(p), 1.0 - i as f64 * 0.01)),
        )
    }

    #[test]
    fn footrule_identical_is_zero() {
        let a = ranking(&[1, 2, 3, 4]);
        let b = ranking(&[1, 2, 3, 4]);
        assert_eq!(footrule_distance(&a, &b, 4), 0.0);
    }

    #[test]
    fn footrule_disjoint_is_one() {
        let a = ranking(&[1, 2, 3]);
        let b = ranking(&[4, 5, 6]);
        assert!((footrule_distance(&a, &b, 3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn footrule_single_swap() {
        let a = ranking(&[1, 2, 3, 4]);
        let b = ranking(&[2, 1, 3, 4]);
        // Two pages displaced by 1 each → 2 / (4·5) = 0.1.
        assert!((footrule_distance(&a, &b, 4) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn footrule_is_symmetric() {
        let a = ranking(&[1, 2, 3, 9]);
        let b = ranking(&[3, 1, 7, 2]);
        let d1 = footrule_distance(&a, &b, 4);
        let d2 = footrule_distance(&b, &a, 4);
        assert!((d1 - d2).abs() < 1e-12);
        assert!(d1 > 0.0 && d1 < 1.0);
    }

    #[test]
    fn footrule_uses_only_top_k() {
        // Beyond-k differences must not matter.
        let a = ranking(&[1, 2, 3, 4, 5]);
        let b = ranking(&[1, 2, 3, 5, 4]);
        assert_eq!(footrule_distance(&a, &b, 3), 0.0);
    }

    #[test]
    fn footrule_missing_page_at_k_plus_one() {
        let a = ranking(&[1, 2]);
        let b = ranking(&[1]);
        // Page 2: pos 2 in a, missing in b → pos 3. Diff 1. Normalizer 2·3.
        assert!((footrule_distance(&a, &b, 2) - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty prefix")]
    fn footrule_k_zero_panics() {
        let a = ranking(&[1]);
        let _ = footrule_distance(&a, &a, 0);
    }

    #[test]
    fn linear_error_zero_for_identical_scores() {
        let a = Ranking::from_scores([(PageId(1), 0.6), (PageId(2), 0.4)]);
        let b = Ranking::from_scores([(PageId(1), 0.6), (PageId(2), 0.4)]);
        assert_eq!(linear_score_error(&a, &b, 2), 0.0);
    }

    #[test]
    fn linear_error_averages_absolute_diffs() {
        let truth = Ranking::from_scores([(PageId(1), 0.6), (PageId(2), 0.4)]);
        let approx = Ranking::from_scores([(PageId(1), 0.5), (PageId(2), 0.5)]);
        assert!((linear_score_error(&approx, &truth, 2) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn linear_error_missing_page_counts_full_score() {
        let truth = Ranking::from_scores([(PageId(1), 0.6), (PageId(2), 0.4)]);
        let approx = Ranking::from_scores([(PageId(1), 0.6)]);
        assert!((linear_score_error(&approx, &truth, 2) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn linear_error_k_truncates_to_available() {
        let truth = Ranking::from_scores([(PageId(1), 1.0)]);
        let approx = Ranking::from_scores([(PageId(1), 0.9)]);
        let e = linear_score_error(&approx, &truth, 100);
        assert!((e - 0.1).abs() < 1e-9);
    }

    #[test]
    fn overlap_bounds() {
        let a = ranking(&[1, 2, 3]);
        let b = ranking(&[3, 2, 1]);
        assert_eq!(top_k_overlap(&a, &b, 3), 1.0);
        let c = ranking(&[7, 8, 9]);
        assert_eq!(top_k_overlap(&a, &c, 3), 0.0);
        let d = ranking(&[1, 8, 9]);
        assert!((top_k_overlap(&d, &a, 3) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn kendall_tau_extremes() {
        let a = ranking(&[1, 2, 3, 4]);
        let same = ranking(&[1, 2, 3, 4]);
        let rev = ranking(&[4, 3, 2, 1]);
        assert_eq!(kendall_tau(&a, &same, 4), Some(1.0));
        assert_eq!(kendall_tau(&a, &rev, 4), Some(-1.0));
    }

    #[test]
    fn kendall_tau_needs_two_common_pages() {
        let a = ranking(&[1, 2]);
        let b = ranking(&[1, 9]);
        assert_eq!(kendall_tau(&a, &b, 2), None);
    }
}
