//! Power-iteration PageRank on the full graph.
//!
//! This is the paper's §2.1 formulation:
//!
//! ```text
//! PR(q) = ε · Σ_{p → q} PR(p)/out(p)  +  (1 − ε) · 1/N
//! ```
//!
//! with ε the probability of following a link (the paper writes the random
//! jump probability as `1 − ε` and "usually sets ε to a value like 0.85").
//!
//! **Dangling pages** (zero out-degree) are not discussed in the paper; we
//! apply the standard treatment — their rank mass is redistributed
//! uniformly over all `N` pages — and `jxp-core` applies the *identical*
//! treatment in the local computation so JXP-vs-PR comparisons are
//! apples-to-apples (see DESIGN.md §5).

use jxp_telemetry::{Event, TelemetryHub};
use jxp_webgraph::{GraphSource, PageId};

/// Configuration for the power iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct PageRankConfig {
    /// Probability of following a link (paper's ε, default 0.85);
    /// the random-jump probability is `1 − epsilon`.
    pub epsilon: f64,
    /// Stop when the L1 change between successive iterations falls below
    /// this threshold.
    pub tolerance: f64,
    /// Hard cap on iterations (protects against pathological inputs).
    pub max_iterations: usize,
    /// Worker threads for the pull-based update (`0` = the machine's
    /// available parallelism, `1` = serial). The result is bit-identical
    /// for every value — see [`crate::par`].
    pub threads: usize,
}

impl Default for PageRankConfig {
    fn default() -> Self {
        PageRankConfig {
            epsilon: 0.85,
            tolerance: 1e-10,
            max_iterations: 200,
            threads: 1,
        }
    }
}

impl PageRankConfig {
    /// Validate parameter ranges.
    ///
    /// # Panics
    /// Panics if `epsilon ∉ (0, 1)`, `tolerance ≤ 0` or
    /// `max_iterations == 0`.
    pub fn validate(&self) {
        assert!(
            self.epsilon > 0.0 && self.epsilon < 1.0,
            "epsilon must be in (0, 1), got {}",
            self.epsilon
        );
        assert!(self.tolerance > 0.0, "tolerance must be positive");
        assert!(self.max_iterations > 0, "max_iterations must be positive");
    }
}

/// Result of a PageRank computation.
#[derive(Debug, Clone)]
pub struct PageRankResult {
    scores: Vec<f64>,
    iterations: usize,
    converged: bool,
}

impl PageRankResult {
    /// Assemble a result from raw parts (used by the alternative solvers
    /// in this crate).
    pub(crate) fn from_parts(scores: Vec<f64>, iterations: usize, converged: bool) -> Self {
        PageRankResult {
            scores,
            iterations,
            converged,
        }
    }

    /// Score vector indexed by page id; sums to 1.
    pub fn scores(&self) -> &[f64] {
        &self.scores
    }

    /// Score of a single page.
    pub fn score(&self, p: PageId) -> f64 {
        self.scores[p.index()]
    }

    /// Number of power iterations performed.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Whether the L1 tolerance was reached before the iteration cap.
    pub fn converged(&self) -> bool {
        self.converged
    }

    /// The `k` highest-scored pages, best first; ties broken by page id so
    /// the output is deterministic.
    pub fn top_k(&self, k: usize) -> Vec<PageId> {
        crate::ranking::top_k_of_scores(&self.scores, k)
    }

    /// Consume the result, returning the raw score vector.
    pub fn into_scores(self) -> Vec<f64> {
        self.scores
    }
}

/// Compute PageRank of every page in `g` by power iteration.
///
/// Starts from the uniform vector `1/N` (as the paper prescribes) and
/// iterates until the L1 change is below `config.tolerance` or
/// `config.max_iterations` is hit.
///
/// Generic over [`GraphSource`], so the same iteration runs against an
/// in-memory `CsrGraph` or a disk-backed `jxp-segstore` graph — with
/// bit-identical scores, because every backend serves the same
/// adjacency in the same (ascending) order.
///
/// # Panics
/// Panics if the graph is empty or the config is invalid.
pub fn pagerank<G: GraphSource + ?Sized>(g: &G, config: &PageRankConfig) -> PageRankResult {
    pagerank_with_telemetry(g, config, None)
}

/// [`pagerank`] with optional instrumentation: when `telemetry` is
/// given, every sweep bumps the `jxp_pagerank_iterations_total` counter,
/// publishes the L1 residual on the `jxp_pagerank_residual` gauge, and
/// traces a [`Event::PrIterated`] record. The numeric result is
/// untouched — the same float operations run in the same order, so
/// scores stay bit-identical with telemetry on or off.
///
/// # Panics
/// Panics if the graph is empty or the config is invalid.
pub fn pagerank_with_telemetry<G: GraphSource + ?Sized>(
    g: &G,
    config: &PageRankConfig,
    telemetry: Option<&TelemetryHub>,
) -> PageRankResult {
    config.validate();
    let instruments = telemetry.map(|hub| {
        (
            hub.registry().counter("jxp_pagerank_iterations_total"),
            hub.registry().gauge("jxp_pagerank_residual"),
            hub.events(),
        )
    });
    let n = g.num_nodes();
    assert!(n > 0, "PageRank of an empty graph is undefined");
    let eps = config.epsilon;
    let uniform = 1.0 / n as f64;
    let mut curr = vec![uniform; n];
    let mut next = vec![0.0f64; n];

    // Cache inverse out-degrees; dangling pages are flagged with 0.0.
    let inv_out: Vec<f64> = (0..n)
        .map(|v| {
            let d = g.out_degree(PageId(v as u32));
            if d == 0 {
                0.0
            } else {
                1.0 / d as f64
            }
        })
        .collect();
    let dangling: Vec<u32> = g.dangling().iter().map(|p| p.0).collect();

    let mut iterations = 0;
    let mut converged = false;
    while iterations < config.max_iterations {
        iterations += 1;
        // Dangling mass is spread uniformly over all pages.
        let dangling_mass: f64 = dangling.iter().map(|&v| curr[v as usize]).sum();
        let base = (1.0 - eps) * uniform + eps * dangling_mass * uniform;
        // Pull-based chunked update: each chunk writes its own disjoint
        // slice of `next` and returns its L1-delta partial; partials are
        // folded in chunk order so the result is bit-identical for any
        // thread count (see `crate::par`).
        let curr_ref = &curr;
        let partials = crate::par::chunked_fill(&mut next, config.threads, |start, chunk| {
            let mut delta = 0.0;
            for (k, out) in chunk.iter_mut().enumerate() {
                let q = start + k;
                let mut sum = 0.0;
                g.for_each_predecessor(PageId(q as u32), |p| {
                    sum += curr_ref[p.index()] * inv_out[p.index()];
                });
                *out = base + eps * sum;
                delta += (curr_ref[q] - *out).abs();
            }
            delta
        });
        let delta: f64 = partials.iter().sum();
        if let Some((iters, residual, events)) = &instruments {
            iters.inc();
            residual.set(delta);
            events.record(Event::PrIterated {
                iteration: iterations as u64,
                residual: delta,
            });
        }
        std::mem::swap(&mut curr, &mut next);
        if delta < config.tolerance {
            converged = true;
            break;
        }
    }
    PageRankResult {
        scores: curr,
        iterations,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jxp_webgraph::{CsrGraph, GraphBuilder};

    fn graph(n: usize, edges: &[(u32, u32)]) -> CsrGraph {
        let mut b = GraphBuilder::new();
        b.ensure_nodes(n);
        for &(s, d) in edges {
            b.add_edge(PageId(s), PageId(d));
        }
        b.build()
    }

    #[test]
    fn scores_sum_to_one() {
        let g = graph(4, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 0)]);
        let pr = pagerank(&g, &PageRankConfig::default());
        let total: f64 = pr.scores().iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "sum {total}");
        assert!(pr.converged());
    }

    #[test]
    fn symmetric_cycle_is_uniform() {
        let g = graph(3, &[(0, 1), (1, 2), (2, 0)]);
        let pr = pagerank(&g, &PageRankConfig::default());
        for &s in pr.scores() {
            assert!((s - 1.0 / 3.0).abs() < 1e-9, "score {s}");
        }
    }

    #[test]
    fn authority_flows_to_popular_page() {
        // Pages 1..=4 all link to 0; 0 links back to 1.
        let g = graph(5, &[(1, 0), (2, 0), (3, 0), (4, 0), (0, 1)]);
        let pr = pagerank(&g, &PageRankConfig::default());
        let top = pr.top_k(2);
        assert_eq!(top[0], PageId(0));
        assert_eq!(top[1], PageId(1)); // endorsed by the most important page
        assert!(pr.score(PageId(0)) > pr.score(PageId(2)));
    }

    #[test]
    fn dangling_mass_is_conserved() {
        // Page 1 is dangling.
        let g = graph(3, &[(0, 1), (2, 0)]);
        let pr = pagerank(&g, &PageRankConfig::default());
        let total: f64 = pr.scores().iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "sum {total}");
    }

    #[test]
    fn all_dangling_graph_is_uniform() {
        let g = graph(4, &[]);
        let pr = pagerank(&g, &PageRankConfig::default());
        for &s in pr.scores() {
            assert!((s - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn fixed_point_property_holds() {
        // Verify PR(q) = base + ε Σ PR(p)/out(p) at the fixed point.
        let g = graph(5, &[(0, 1), (1, 2), (2, 0), (3, 2), (3, 4), (4, 3)]);
        let cfg = PageRankConfig {
            tolerance: 1e-14,
            ..Default::default()
        };
        let pr = pagerank(&g, &cfg);
        let n = g.num_nodes() as f64;
        let dangling_mass: f64 = g.dangling_nodes().map(|p| pr.score(p)).sum();
        for q in g.nodes() {
            let sum: f64 = g
                .predecessors(q)
                .map(|p| pr.score(p) / g.out_degree(p) as f64)
                .sum();
            let expect = (1.0 - cfg.epsilon) / n + cfg.epsilon * (sum + dangling_mass / n);
            assert!(
                (pr.score(q) - expect).abs() < 1e-10,
                "fixed point violated at {q:?}: {} vs {}",
                pr.score(q),
                expect
            );
        }
    }

    #[test]
    fn iteration_cap_is_respected() {
        // Asymmetric graph: uniform start is NOT the fixed point, and the
        // 1e-30 tolerance is unreachable in floating point.
        let g = graph(4, &[(0, 1), (1, 2), (2, 0), (3, 0)]);
        let cfg = PageRankConfig {
            tolerance: 1e-30,
            max_iterations: 5,
            ..Default::default()
        };
        let pr = pagerank(&g, &cfg);
        assert_eq!(pr.iterations(), 5);
        assert!(!pr.converged());
    }

    #[test]
    #[should_panic(expected = "empty graph")]
    fn empty_graph_panics() {
        let g = GraphBuilder::new().build();
        let _ = pagerank(&g, &PageRankConfig::default());
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn bad_epsilon_panics() {
        let g = graph(2, &[(0, 1)]);
        let cfg = PageRankConfig {
            epsilon: 1.5,
            ..Default::default()
        };
        let _ = pagerank(&g, &cfg);
    }

    #[test]
    fn parallel_pagerank_is_bit_identical_to_serial() {
        // A graph spanning several chunks so the parallel path really
        // engages (n > 2·CHUNK), with hubs, chords and dangling pages.
        let n = crate::par::CHUNK * 2 + 123;
        let mut b = GraphBuilder::new();
        b.ensure_nodes(n);
        for i in 0..n as u32 {
            if i % 97 == 0 {
                continue; // dangling page
            }
            b.add_edge(PageId(i), PageId((i + 1) % n as u32));
            b.add_edge(PageId(i), PageId((i * 7 + 13) % n as u32));
            if i % 5 == 0 {
                b.add_edge(PageId(i), PageId(0)); // hub
            }
        }
        let g = b.build();
        let serial = pagerank(&g, &PageRankConfig::default());
        for threads in [2, 4, 8] {
            let par = pagerank(
                &g,
                &PageRankConfig {
                    threads,
                    ..Default::default()
                },
            );
            assert_eq!(
                serial.scores(),
                par.scores(),
                "scores diverge at {threads} threads"
            );
            assert_eq!(serial.iterations(), par.iterations());
        }
    }

    #[test]
    fn telemetry_traces_iterations_without_changing_scores() {
        let g = graph(5, &[(0, 1), (1, 2), (2, 0), (3, 2), (3, 4), (4, 3)]);
        let cfg = PageRankConfig::default();
        let plain = pagerank(&g, &cfg);
        let hub = jxp_telemetry::TelemetryHub::new();
        let traced = pagerank_with_telemetry(&g, &cfg, Some(&hub));
        assert_eq!(plain.scores(), traced.scores());
        assert_eq!(plain.iterations(), traced.iterations());

        let snap = hub.snapshot();
        assert_eq!(
            snap.metrics.counters["jxp_pagerank_iterations_total"],
            traced.iterations() as u64
        );
        // The gauge holds the final residual, which beat the tolerance.
        assert!(snap.metrics.gauges["jxp_pagerank_residual"] < cfg.tolerance);
        let iterated: Vec<u64> = snap
            .events
            .iter()
            .filter_map(|r| match r.event {
                jxp_telemetry::Event::PrIterated { iteration, .. } => Some(iteration),
                _ => None,
            })
            .collect();
        let want: Vec<u64> = (1..=traced.iterations() as u64).collect();
        assert_eq!(iterated, want, "one PrIterated per sweep, in order");
    }

    #[test]
    fn epsilon_zero_point_five_flattens_scores() {
        let g = graph(5, &[(1, 0), (2, 0), (3, 0), (4, 0), (0, 1)]);
        let strong = pagerank(&g, &PageRankConfig::default());
        let weak = pagerank(
            &g,
            &PageRankConfig {
                epsilon: 0.5,
                ..Default::default()
            },
        );
        // Lower ε ⇒ more random jumps ⇒ less concentration on the hub.
        assert!(weak.score(PageId(0)) < strong.score(PageId(0)));
    }
}
