//! Deterministic fixed-chunk parallel execution.
//!
//! Every parallel numeric loop in the workspace must be **bit-identical**
//! to its serial execution — the repo's determinism guarantee (same seed →
//! same scores, regardless of hardware). Two rules make that true here:
//!
//! 1. **Chunk boundaries are fixed** ([`CHUNK`] elements), independent of
//!    the thread count. Each chunk's floating-point operations are then
//!    the same no matter which thread runs it, or whether any thread runs
//!    it at all (serial fallback).
//! 2. **Reductions happen in chunk-index order** on the calling thread:
//!    each chunk returns a partial value, and the caller folds the
//!    partials `partial[0] + partial[1] + …`. The association of the sum
//!    never depends on scheduling.
//!
//! Writes are *pull-based and disjoint*: chunk `c` writes only
//! `out[c·CHUNK .. (c+1)·CHUNK]`, reading shared immutable state, so the
//! borrow checker proves data-race freedom via `split_at_mut`-style
//! chunking — no locks or atomics in this module. Execution runs on the
//! workspace's persistent [`jxp_pool`] workers (dealt round-robin with
//! work-stealing) rather than spawn-per-call scoped threads; stealing
//! only moves chunks between workers and cannot affect results.

/// Fixed chunk width of all deterministic parallel loops.
///
/// Small enough to load-balance across threads on the paper's graph
/// sizes, large enough that per-chunk overhead is negligible. Changing it
/// changes the floating-point association of chunk reductions (still
/// deterministic, but a different fixed point in the last ulp), so it is
/// a single workspace-wide constant.
pub const CHUNK: usize = 4096;

/// Resolve a thread-count knob: `0` means "use the machine's available
/// parallelism", anything else is taken literally.
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    }
}

/// Fill `out` chunk by chunk with `fill(chunk_start, chunk_slice) ->
/// partial`, using up to `threads` executors on the shared persistent
/// [`jxp_pool`], and return the per-chunk partials **in chunk order**.
///
/// `fill` receives the global start index of its chunk and the chunk's
/// mutable output slice; it must derive everything else from shared
/// immutable captures. The result is bit-identical for every `threads`
/// value (including the inline serial path) by the rules in the module
/// docs.
pub fn chunked_fill<P, F>(out: &mut [f64], threads: usize, fill: F) -> Vec<P>
where
    P: Send + Default,
    F: Fn(usize, &mut [f64]) -> P + Sync,
{
    let n = out.len();
    let num_chunks = n.div_ceil(CHUNK).max(1);
    let threads = resolve_threads(threads).min(num_chunks).max(1);
    if threads == 1 || num_chunks == 1 {
        // Serial path: same chunking, same per-chunk arithmetic.
        return out
            .chunks_mut(CHUNK)
            .enumerate()
            .map(|(c, chunk)| fill(c * CHUNK, chunk))
            .collect();
    }
    let mut partials: Vec<P> = (0..num_chunks).map(|_| P::default()).collect();
    // Persistent shared pool instead of spawn-per-call scoped threads.
    // Chunks are dealt round-robin so executors interleave over the
    // index space (consecutive chunks often have correlated cost in web
    // graphs); work-stealing may move a chunk elsewhere, which cannot
    // change results — each chunk writes only its own slice and slot.
    let tasks: Vec<(usize, &mut [f64], &mut P)> = out
        .chunks_mut(CHUNK)
        .zip(partials.iter_mut())
        .enumerate()
        .map(|(c, (chunk, slot))| (c * CHUNK, chunk, slot))
        .collect();
    jxp_pool::global().run_dealt(threads, tasks, |(start, chunk, slot)| {
        *slot = fill(start, chunk);
    });
    partials
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_threads_zero_is_auto() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }

    #[test]
    fn chunked_fill_covers_every_element() {
        let n = CHUNK * 2 + 17; // three chunks, last one ragged
        let mut out = vec![0.0; n];
        let partials = chunked_fill(&mut out, 4, |start, chunk| {
            for (k, v) in chunk.iter_mut().enumerate() {
                *v = (start + k) as f64;
            }
            chunk.len() as f64
        });
        assert_eq!(partials.len(), 3);
        assert_eq!(partials.iter().sum::<f64>(), n as f64);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as f64);
        }
    }

    #[test]
    fn parallel_matches_serial_bitwise() {
        let n = CHUNK * 3 + 5;
        let input: Vec<f64> = (0..n).map(|i| 1.0 / (i as f64 + 1.0)).collect();
        let run = |threads: usize| {
            let mut out = vec![0.0; n];
            let partials = chunked_fill(&mut out, threads, |start, chunk| {
                let mut acc = 0.0;
                for (k, v) in chunk.iter_mut().enumerate() {
                    *v = input[start + k].sqrt() * 0.37 + acc;
                    acc += *v;
                }
                acc
            });
            (out, partials)
        };
        let (serial, sp) = run(1);
        for threads in [2, 3, 8] {
            let (par, pp) = run(threads);
            assert_eq!(serial, par, "outputs differ at {threads} threads");
            assert_eq!(sp, pp, "partials differ at {threads} threads");
        }
    }

    #[test]
    fn empty_and_tiny_inputs_are_fine() {
        let mut out: Vec<f64> = Vec::new();
        let partials = chunked_fill(&mut out, 8, |_, _| 1.0f64);
        assert!(partials.is_empty());
        let mut one = vec![0.0];
        let partials = chunked_fill(&mut one, 8, |start, chunk| {
            chunk[0] = 42.0;
            start as f64
        });
        assert_eq!(one, vec![42.0]);
        assert_eq!(partials, vec![0.0]);
    }
}
