#![deny(missing_docs)]
//! # jxp-pagerank
//!
//! Centralized PageRank (the paper's ground truth / baseline) and the
//! ranking-comparison metrics of §6.2.
//!
//! The JXP evaluation always compares against "the true PR scores that one
//! would obtain by a centralized computation"; this crate provides that
//! computation ([`power::pagerank`]) along with Spearman's footrule
//! distance and the linear score error exactly as the paper defines them
//! ([`metrics`]).
//!
//! It also implements the link-analysis methods the paper positions JXP
//! against (§1/§2): [`hits`] (Kleinberg's other seminal algorithm),
//! [`opic`] (online page importance, whose fairness argument Theorem 5.4
//! borrows), [`blockrank`] (the disjoint-partition distributed PageRank
//! that JXP generalizes away from), and [`chen_local`] (single-page local
//! estimation, whose recursive in-link queries JXP's world node avoids).
//! The `baselines` experiment binary compares them head-to-head.
//!
//! ```
//! use jxp_webgraph::{GraphBuilder, PageId};
//! use jxp_pagerank::power::{pagerank, PageRankConfig};
//!
//! let mut b = GraphBuilder::new();
//! b.add_edge(PageId(0), PageId(1));
//! b.add_edge(PageId(1), PageId(0));
//! b.add_edge(PageId(2), PageId(0));
//! let g = b.build();
//! let pr = pagerank(&g, &PageRankConfig::default());
//! let total: f64 = pr.scores().iter().sum();
//! assert!((total - 1.0).abs() < 1e-9);
//! // Page 0 has the most in-links and the highest score.
//! assert_eq!(pr.top_k(1)[0], PageId(0));
//! ```

pub mod blockrank;
pub mod chen_local;
pub mod gauss_seidel;
pub mod hits;
pub mod metrics;
pub mod opic;
pub mod par;
pub mod personalized;
pub mod power;
pub mod ranking;

pub use power::{pagerank, pagerank_with_telemetry, PageRankConfig, PageRankResult};
pub use ranking::Ranking;
