//! HITS (Kleinberg 1999) — the other seminal link-analysis algorithm.
//!
//! The paper opens by situating JXP between "the two seminal methods
//! PageRank … and HITS" (§1); HITS is implemented here as the classic
//! comparison baseline. Hubs point to good authorities; authorities are
//! pointed to by good hubs:
//!
//! ```text
//! a(q) = Σ_{p → q} h(p)        h(p) = Σ_{p → q} a(q)
//! ```
//!
//! iterated with L2 normalization until convergence.

use jxp_webgraph::{CsrGraph, PageId};

/// Configuration for the HITS iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct HitsConfig {
    /// Stop when the L1 change of the authority vector drops below this.
    pub tolerance: f64,
    /// Iteration cap.
    pub max_iterations: usize,
}

impl Default for HitsConfig {
    fn default() -> Self {
        HitsConfig {
            tolerance: 1e-10,
            max_iterations: 200,
        }
    }
}

/// Result of a HITS computation: parallel hub and authority vectors,
/// each L2-normalized.
#[derive(Debug, Clone)]
pub struct HitsResult {
    authorities: Vec<f64>,
    hubs: Vec<f64>,
    iterations: usize,
    converged: bool,
}

impl HitsResult {
    /// Authority scores (L2-normalized), indexed by page id.
    pub fn authorities(&self) -> &[f64] {
        &self.authorities
    }

    /// Hub scores (L2-normalized), indexed by page id.
    pub fn hubs(&self) -> &[f64] {
        &self.hubs
    }

    /// Authority score of one page.
    pub fn authority(&self, p: PageId) -> f64 {
        self.authorities[p.index()]
    }

    /// Hub score of one page.
    pub fn hub(&self, p: PageId) -> f64 {
        self.hubs[p.index()]
    }

    /// Iterations performed.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Whether the tolerance was reached.
    pub fn converged(&self) -> bool {
        self.converged
    }

    /// The `k` pages with the highest authority scores, best first.
    pub fn top_authorities(&self, k: usize) -> Vec<PageId> {
        crate::ranking::top_k_of_scores(&self.authorities, k)
    }

    /// The `k` pages with the highest hub scores, best first.
    pub fn top_hubs(&self, k: usize) -> Vec<PageId> {
        crate::ranking::top_k_of_scores(&self.hubs, k)
    }
}

fn l2_normalize(v: &mut [f64]) {
    let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm > 0.0 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
}

/// Run HITS on the whole graph (in Kleinberg's usage the input would be a
/// query-focused subgraph; peers can pass any [`CsrGraph`]).
///
/// # Panics
/// Panics if the graph is empty or the config invalid.
pub fn hits(g: &CsrGraph, config: &HitsConfig) -> HitsResult {
    assert!(g.num_nodes() > 0, "HITS of an empty graph is undefined");
    assert!(config.tolerance > 0.0, "tolerance must be positive");
    assert!(config.max_iterations > 0, "max_iterations must be positive");
    let n = g.num_nodes();
    let mut auth = vec![1.0 / (n as f64).sqrt(); n];
    let mut hub = vec![1.0 / (n as f64).sqrt(); n];
    let mut iterations = 0;
    let mut converged = false;
    while iterations < config.max_iterations {
        iterations += 1;
        // a ← Eᵀ h
        let mut new_auth = vec![0.0; n];
        for (q, na) in new_auth.iter_mut().enumerate() {
            *na = g
                .predecessors(PageId(q as u32))
                .map(|p| hub[p.index()])
                .sum();
        }
        l2_normalize(&mut new_auth);
        // h ← E a
        let mut new_hub = vec![0.0; n];
        for (p, nh) in new_hub.iter_mut().enumerate() {
            *nh = g
                .successors(PageId(p as u32))
                .map(|q| new_auth[q.index()])
                .sum();
        }
        l2_normalize(&mut new_hub);
        let delta: f64 = auth
            .iter()
            .zip(new_auth.iter())
            .map(|(a, b)| (a - b).abs())
            .sum();
        auth = new_auth;
        hub = new_hub;
        if delta < config.tolerance {
            converged = true;
            break;
        }
    }
    HitsResult {
        authorities: auth,
        hubs: hub,
        iterations,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jxp_webgraph::GraphBuilder;

    fn graph(n: usize, edges: &[(u32, u32)]) -> CsrGraph {
        let mut b = GraphBuilder::new();
        b.ensure_nodes(n);
        for &(s, d) in edges {
            b.add_edge(PageId(s), PageId(d));
        }
        b.build()
    }

    #[test]
    fn star_graph_separates_hub_and_authority() {
        // Page 0 points to 1, 2, 3 — a pure hub; 1..3 are pure authorities.
        let g = graph(4, &[(0, 1), (0, 2), (0, 3)]);
        let r = hits(&g, &HitsConfig::default());
        assert!(r.converged());
        assert!(r.hub(PageId(0)) > 0.99);
        assert!(r.authority(PageId(0)) < 1e-9);
        for p in [1u32, 2, 3] {
            assert!(r.authority(PageId(p)) > 0.5);
            assert!(r.hub(PageId(p)) < 1e-9);
        }
        assert_eq!(r.top_hubs(1), vec![PageId(0)]);
    }

    #[test]
    fn vectors_are_l2_normalized() {
        let g = graph(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (0, 2)]);
        let r = hits(&g, &HitsConfig::default());
        let na: f64 = r.authorities().iter().map(|x| x * x).sum();
        let nh: f64 = r.hubs().iter().map(|x| x * x).sum();
        assert!((na - 1.0).abs() < 1e-9, "authority norm {na}");
        assert!((nh - 1.0).abs() < 1e-9, "hub norm {nh}");
    }

    #[test]
    fn bipartite_core_dominates() {
        // Dense bipartite core {0,1} → {2,3} plus a stray edge 4 → 5.
        let g = graph(6, &[(0, 2), (0, 3), (1, 2), (1, 3), (4, 5)]);
        let r = hits(&g, &HitsConfig::default());
        let tops = r.top_authorities(2);
        assert!(tops.contains(&PageId(2)) && tops.contains(&PageId(3)));
        assert!(r.authority(PageId(5)) < r.authority(PageId(2)));
    }

    #[test]
    fn authority_ranking_differs_from_pagerank_on_hub_structures() {
        // HITS rewards membership in dense cores; PageRank rewards
        // in-degree weighted by source importance. A page pointed to by
        // one mega-hub: HITS authority high, PR moderate.
        let g = graph(
            7,
            &[
                (0, 1),
                (0, 2),
                (0, 3),
                (1, 6),
                (2, 6),
                (3, 6),
                (4, 5),
                (5, 4),
            ],
        );
        let h = hits(&g, &HitsConfig::default());
        let pr = crate::pagerank(&g, &crate::PageRankConfig::default());
        // Page 6 is the HITS authority champion.
        assert_eq!(h.top_authorities(1), vec![PageId(6)]);
        // The PR champion is in the 4↔5 cycle (a rank sink pair).
        assert_ne!(pr.top_k(1), vec![PageId(6)]);
    }

    #[test]
    fn edgeless_graph_degenerates_gracefully() {
        let g = graph(3, &[]);
        let r = hits(&g, &HitsConfig::default());
        // No links: scores collapse to zero vectors after one step.
        assert!(r.authorities().iter().all(|&a| a == 0.0));
    }

    #[test]
    #[should_panic(expected = "empty graph")]
    fn empty_graph_panics() {
        let g = GraphBuilder::new().build();
        let _ = hits(&g, &HitsConfig::default());
    }
}
