//! Personalized (topic-sensitive) PageRank.
//!
//! The paper's P2P search engine serves peers with *thematic interest
//! profiles* (§1: each peer "crawls Web fragments and indexes them locally
//! according to the user's interest profile"). Personalized PageRank is
//! the classic way to turn such a profile into an authority measure: the
//! random jump teleports to the profile's pages instead of uniformly, so
//! authority concentrates around the user's topic. Provided here as a
//! library feature for topic-aware ranking experiments on top of the
//! Minerva substrate.

use crate::power::{PageRankConfig, PageRankResult};
use jxp_webgraph::{CsrGraph, PageId};

/// Compute PageRank with a custom teleport distribution: random jumps
/// (and dangling mass) land on page `i` with probability `teleport[i]`.
///
/// With the uniform distribution this reduces exactly to
/// [`pagerank`](crate::pagerank).
///
/// # Panics
/// Panics if the graph is empty, the config invalid, `teleport` has the
/// wrong length, contains negatives, or sums to (near) zero. The vector
/// is normalized internally, so any non-negative weighting is accepted.
pub fn personalized_pagerank(
    g: &CsrGraph,
    teleport: &[f64],
    config: &PageRankConfig,
) -> PageRankResult {
    config.validate();
    let n = g.num_nodes();
    assert!(n > 0, "PageRank of an empty graph is undefined");
    assert_eq!(teleport.len(), n, "teleport vector length mismatch");
    assert!(
        teleport.iter().all(|&v| v.is_finite() && v >= 0.0),
        "teleport weights must be non-negative"
    );
    let total: f64 = teleport.iter().sum();
    assert!(total > 0.0, "teleport vector has no mass");
    let v: Vec<f64> = teleport.iter().map(|&x| x / total).collect();

    let eps = config.epsilon;
    let inv_out: Vec<f64> = (0..n)
        .map(|p| {
            let d = g.out_degree(PageId(p as u32));
            if d == 0 {
                0.0
            } else {
                1.0 / d as f64
            }
        })
        .collect();
    let dangling: Vec<u32> = g.dangling_nodes().map(|p| p.0).collect();

    let mut curr = v.clone();
    let mut next = vec![0.0f64; n];
    let mut iterations = 0;
    let mut converged = false;
    while iterations < config.max_iterations {
        iterations += 1;
        let dangling_mass: f64 = dangling.iter().map(|&p| curr[p as usize]).sum();
        for (q, out) in next.iter_mut().enumerate() {
            let mut sum = 0.0;
            for p in g.predecessors(PageId(q as u32)) {
                sum += curr[p.index()] * inv_out[p.index()];
            }
            *out = (1.0 - eps) * v[q] + eps * (sum + dangling_mass * v[q]);
        }
        let delta: f64 = curr
            .iter()
            .zip(next.iter())
            .map(|(a, b)| (a - b).abs())
            .sum();
        std::mem::swap(&mut curr, &mut next);
        if delta < config.tolerance {
            converged = true;
            break;
        }
    }
    PageRankResult::from_parts(curr, iterations, converged)
}

/// Convenience: personalized PageRank teleporting uniformly to `seeds`.
///
/// # Panics
/// Panics if `seeds` is empty or references a page outside the graph.
pub fn topic_pagerank(g: &CsrGraph, seeds: &[PageId], config: &PageRankConfig) -> PageRankResult {
    assert!(!seeds.is_empty(), "topic needs at least one seed page");
    let mut teleport = vec![0.0; g.num_nodes()];
    for &s in seeds {
        assert!(s.index() < g.num_nodes(), "seed {s:?} outside the graph");
        teleport[s.index()] = 1.0;
    }
    personalized_pagerank(g, &teleport, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{pagerank, PageRankConfig};
    use jxp_webgraph::generators::{CategorizedGraph, CategorizedParams};
    use jxp_webgraph::GraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_teleport_matches_standard_pagerank() {
        let cg = CategorizedGraph::generate(
            &CategorizedParams {
                num_categories: 2,
                nodes_per_category: 60,
                intra_out_per_node: 3,
                cross_fraction: 0.2,
            },
            &mut StdRng::seed_from_u64(1),
        );
        let cfg = PageRankConfig {
            tolerance: 1e-13,
            ..Default::default()
        };
        let standard = pagerank(&cg.graph, &cfg);
        let uniform = vec![1.0; cg.graph.num_nodes()];
        let personal = personalized_pagerank(&cg.graph, &uniform, &cfg);
        for (a, b) in standard.scores().iter().zip(personal.scores().iter()) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn topic_teleport_concentrates_authority_on_topic() {
        let cg = CategorizedGraph::generate(
            &CategorizedParams {
                num_categories: 3,
                nodes_per_category: 100,
                intra_out_per_node: 4,
                cross_fraction: 0.1,
            },
            &mut StdRng::seed_from_u64(2),
        );
        let cfg = PageRankConfig::default();
        let seeds: Vec<PageId> = cg.pages_in_category(1).collect();
        let topic = topic_pagerank(&cg.graph, &seeds, &cfg);
        let global = pagerank(&cg.graph, &cfg);
        let mass =
            |scores: &[f64]| -> f64 { cg.pages_in_category(1).map(|p| scores[p.index()]).sum() };
        assert!(
            mass(topic.scores()) > 2.0 * mass(global.scores()),
            "topic mass {} vs global {}",
            mass(topic.scores()),
            mass(global.scores())
        );
        let total: f64 = topic.scores().iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn single_seed_dominates() {
        let mut b = GraphBuilder::new();
        for (s, d) in [(0, 1), (1, 2), (2, 0), (2, 3), (3, 2)] {
            b.add_edge(PageId(s), PageId(d));
        }
        let g = b.build();
        let r = topic_pagerank(&g, &[PageId(3)], &PageRankConfig::default());
        // Page 3 receives every random jump; it or its direct beneficiary
        // must top the ranking, and page 3 clearly beats the far side.
        assert!(r.score(PageId(3)) > r.score(PageId(0)));
        assert!(r.score(PageId(3)) > r.score(PageId(1)));
    }

    #[test]
    fn dangling_mass_teleports_to_topic() {
        // 1 is dangling; with teleport pinned on 0, mass must not leak.
        let mut b = GraphBuilder::new();
        b.add_edge(PageId(0), PageId(1));
        let g = b.build();
        let r = topic_pagerank(&g, &[PageId(0)], &PageRankConfig::default());
        let total: f64 = r.scores().iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(r.score(PageId(0)) > r.score(PageId(1)));
    }

    #[test]
    #[should_panic(expected = "no mass")]
    fn zero_teleport_panics() {
        let mut b = GraphBuilder::new();
        b.add_edge(PageId(0), PageId(1));
        let g = b.build();
        let _ = personalized_pagerank(&g, &[0.0, 0.0], &PageRankConfig::default());
    }

    #[test]
    #[should_panic(expected = "outside the graph")]
    fn out_of_range_seed_panics() {
        let mut b = GraphBuilder::new();
        b.add_edge(PageId(0), PageId(1));
        let g = b.build();
        let _ = topic_pagerank(&g, &[PageId(99)], &PageRankConfig::default());
    }
}
