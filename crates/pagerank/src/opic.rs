//! OPIC — Adaptive On-line Page Importance Computation (Abiteboul,
//! Preda, Cobena; WWW 2003).
//!
//! §2.2 describes OPIC as "a storage-efficient approach to computing
//! authority scores … by randomly (or otherwise fairly) visiting Web pages
//! in a long-running crawl process and performing a small step of the PR
//! power iteration for the page and its successors upon each such visit",
//! and the JXP liveness proof (Theorem 5.4) borrows its fairness argument.
//! It is implemented here as a centralized baseline: same goal as
//! PageRank, radically different schedule.
//!
//! Every page holds **cash**; visiting a page distributes its cash to its
//! successors (and a virtual page, which redistributes uniformly — this is
//! OPIC's ergodicity device, mirroring PageRank's random jump) and adds it
//! to the page's **history**. The importance estimate of a page is its
//! share of all history accumulated so far.

use jxp_webgraph::{CsrGraph, PageId};
use rand::Rng;

/// Visiting policies studied in the OPIC paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VisitPolicy {
    /// Uniformly random page (fair in expectation).
    Random,
    /// Greedy: always the page with the most cash (the paper's best
    /// performer).
    Greedy,
    /// Round-robin sweep (systematic fairness).
    Cycle,
}

/// An in-progress OPIC computation.
#[derive(Debug, Clone)]
pub struct Opic {
    cash: Vec<f64>,
    history: Vec<f64>,
    /// Cash parked at the virtual page, redistributed on its visits.
    virtual_cash: f64,
    /// Probability mass each page routes to the virtual page per visit —
    /// chosen as `1 − ε` so OPIC estimates match PageRank's damped scores.
    jump: f64,
    policy: VisitPolicy,
    cursor: usize,
    visits: u64,
}

impl Opic {
    /// Start an OPIC run over `g`. `jump` is the share of each visit's
    /// cash routed through the virtual page (use `1 − ε = 0.15` to match
    /// PageRank with ε = 0.85).
    ///
    /// # Panics
    /// Panics if the graph is empty or `jump ∉ [0, 1)`.
    pub fn new(g: &CsrGraph, jump: f64, policy: VisitPolicy) -> Self {
        assert!(g.num_nodes() > 0, "OPIC of an empty graph is undefined");
        assert!((0.0..1.0).contains(&jump), "jump must be in [0, 1)");
        let n = g.num_nodes();
        Opic {
            cash: vec![1.0 / n as f64; n],
            history: vec![0.0; n],
            virtual_cash: 0.0,
            jump,
            policy,
            cursor: 0,
            visits: 0,
        }
    }

    /// Total visits performed.
    pub fn visits(&self) -> u64 {
        self.visits
    }

    /// Perform one page visit.
    pub fn visit(&mut self, g: &CsrGraph, rng: &mut impl Rng) {
        let n = g.num_nodes();
        // Flush the virtual page whenever it has accumulated real mass:
        // its cash spreads uniformly (the random-jump behaviour).
        if self.virtual_cash * n as f64 > 1.0 {
            let share = self.virtual_cash / n as f64;
            for c in self.cash.iter_mut() {
                *c += share;
            }
            self.virtual_cash = 0.0;
        }
        let page = match self.policy {
            VisitPolicy::Random => PageId(rng.gen_range(0..n as u32)),
            VisitPolicy::Greedy => {
                let (idx, _) = self
                    .cash
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                    .expect("non-empty cash vector");
                PageId(idx as u32)
            }
            VisitPolicy::Cycle => {
                let p = PageId((self.cursor % n) as u32);
                self.cursor += 1;
                p
            }
        };
        self.visits += 1;
        let cash = std::mem::take(&mut self.cash[page.index()]);
        self.history[page.index()] += cash;
        let out = g.out_degree(page);
        if out == 0 {
            // Dangling: everything goes through the virtual page.
            self.virtual_cash += cash;
            return;
        }
        self.virtual_cash += cash * self.jump;
        let per_succ = cash * (1.0 - self.jump) / out as f64;
        for succ in g.successors(page) {
            self.cash[succ.index()] += per_succ;
        }
    }

    /// Run `count` visits.
    pub fn run(&mut self, g: &CsrGraph, count: u64, rng: &mut impl Rng) {
        for _ in 0..count {
            self.visit(g, rng);
        }
    }

    /// Current importance estimates: each page's share of the history +
    /// outstanding cash held by **real pages** (the OPIC estimator; cash
    /// parked at the virtual page is in transit and excluded from the
    /// normalizer, so the result always sums to exactly 1).
    pub fn importance(&self) -> Vec<f64> {
        let total: f64 = self.history.iter().sum::<f64>() + self.cash.iter().sum::<f64>();
        if total <= 0.0 {
            return vec![0.0; self.history.len()];
        }
        self.history
            .iter()
            .zip(self.cash.iter())
            .map(|(h, c)| (h + c) / total)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::top_k_overlap;
    use crate::{pagerank, PageRankConfig};
    use jxp_webgraph::generators::preferential_attachment;
    use jxp_webgraph::GraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ring(n: u32) -> CsrGraph {
        let mut b = GraphBuilder::new();
        for i in 0..n {
            b.add_edge(PageId(i), PageId((i + 1) % n));
        }
        b.build()
    }

    #[test]
    fn importance_sums_to_one() {
        let g = ring(10);
        let mut o = Opic::new(&g, 0.15, VisitPolicy::Cycle);
        let mut rng = StdRng::seed_from_u64(1);
        o.run(&g, 500, &mut rng);
        let total: f64 = o.importance().iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "total {total}");
        assert_eq!(o.visits(), 500);
    }

    #[test]
    fn symmetric_ring_is_uniform() {
        let g = ring(8);
        let mut o = Opic::new(&g, 0.15, VisitPolicy::Cycle);
        let mut rng = StdRng::seed_from_u64(2);
        o.run(&g, 4000, &mut rng);
        for &imp in &o.importance() {
            assert!((imp - 0.125).abs() < 0.01, "importance {imp}");
        }
    }

    #[test]
    fn agrees_with_pagerank_on_web_like_graphs() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = preferential_attachment(300, 3, &mut rng);
        let truth = pagerank(&g, &PageRankConfig::default());
        let truth_ranking = crate::Ranking::from_scores(
            truth
                .scores()
                .iter()
                .enumerate()
                .map(|(i, &s)| (PageId(i as u32), s)),
        );
        for policy in [VisitPolicy::Greedy, VisitPolicy::Random, VisitPolicy::Cycle] {
            let mut o = Opic::new(&g, 0.15, policy);
            o.run(&g, 60_000, &mut rng);
            let est = crate::Ranking::from_scores(
                o.importance()
                    .iter()
                    .enumerate()
                    .map(|(i, &s)| (PageId(i as u32), s + i as f64 * 1e-15)),
            );
            let overlap = top_k_overlap(&est, &truth_ranking, 30);
            assert!(
                overlap > 0.7,
                "{policy:?}: top-30 overlap with PageRank only {overlap}"
            );
        }
    }

    #[test]
    fn greedy_converges_faster_than_random() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = preferential_attachment(200, 3, &mut rng);
        let truth = pagerank(&g, &PageRankConfig::default());
        let err = |o: &Opic| -> f64 {
            o.importance()
                .iter()
                .zip(truth.scores())
                .map(|(a, b)| (a - b).abs())
                .sum()
        };
        let budget = 3_000;
        let mut greedy = Opic::new(&g, 0.15, VisitPolicy::Greedy);
        greedy.run(&g, budget, &mut rng);
        let mut random = Opic::new(&g, 0.15, VisitPolicy::Random);
        random.run(&g, budget, &mut rng);
        assert!(
            err(&greedy) <= err(&random) * 1.2,
            "greedy {} vs random {}",
            err(&greedy),
            err(&random)
        );
    }

    #[test]
    fn dangling_pages_recycle_cash() {
        // 0 → 1, 1 dangling: cash must not leak.
        let mut b = GraphBuilder::new();
        b.add_edge(PageId(0), PageId(1));
        let g = b.build();
        let mut o = Opic::new(&g, 0.15, VisitPolicy::Cycle);
        let mut rng = StdRng::seed_from_u64(5);
        o.run(&g, 200, &mut rng);
        let total: f64 = o.importance().iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(o.importance()[1] > 0.0);
    }

    #[test]
    #[should_panic(expected = "jump")]
    fn invalid_jump_panics() {
        let g = ring(3);
        let _ = Opic::new(&g, 1.0, VisitPolicy::Random);
    }
}
