//! Rankings: ordered lists of pages by authority score.

use jxp_webgraph::{FxHashMap, PageId};

/// The `k` highest-scored indices of a dense score vector, best first.
/// Ties are broken by smaller page id so output is deterministic.
pub fn top_k_of_scores(scores: &[f64], k: usize) -> Vec<PageId> {
    let k = k.min(scores.len());
    let mut ids: Vec<u32> = (0..scores.len() as u32).collect();
    // Full sort is fine at the evaluation sizes used here (≤ ~10⁵); a
    // select_nth_unstable pre-pass keeps it O(n + k log k) for large n.
    if scores.len() > 4 * k && k > 0 {
        ids.select_nth_unstable_by(k - 1, |&a, &b| {
            scores[b as usize]
                .partial_cmp(&scores[a as usize])
                .unwrap()
                .then(a.cmp(&b))
        });
        ids.truncate(k);
    }
    ids.sort_unstable_by(|&a, &b| {
        scores[b as usize]
            .partial_cmp(&scores[a as usize])
            .unwrap()
            .then(a.cmp(&b))
    });
    ids.truncate(k);
    ids.into_iter().map(PageId).collect()
}

/// A ranking over an arbitrary (sparse) set of pages, as produced by
/// merging JXP score lists from many peers.
#[derive(Debug, Clone, Default)]
pub struct Ranking {
    /// Pages in rank order (best first).
    order: Vec<PageId>,
    /// Page → 0-based rank position.
    position: FxHashMap<PageId, u32>,
    /// Page → score, in rank order (parallel to `order`).
    scores: Vec<f64>,
}

impl Ranking {
    /// Build a ranking from `(page, score)` pairs. Ties are broken by page
    /// id. Duplicate pages are rejected.
    ///
    /// # Panics
    /// Panics if a page appears twice.
    pub fn from_scores(pairs: impl IntoIterator<Item = (PageId, f64)>) -> Self {
        let mut v: Vec<(PageId, f64)> = pairs.into_iter().collect();
        v.sort_unstable_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        let mut position = FxHashMap::default();
        let mut order = Vec::with_capacity(v.len());
        let mut scores = Vec::with_capacity(v.len());
        for (i, (p, s)) in v.into_iter().enumerate() {
            let prev = position.insert(p, i as u32);
            assert!(prev.is_none(), "page {p:?} ranked twice");
            order.push(p);
            scores.push(s);
        }
        Ranking {
            order,
            position,
            scores,
        }
    }

    /// Number of ranked pages.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the ranking is empty.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Pages in rank order, best first.
    pub fn order(&self) -> &[PageId] {
        &self.order
    }

    /// The top `k` pages, best first.
    pub fn top_k(&self, k: usize) -> &[PageId] {
        &self.order[..k.min(self.order.len())]
    }

    /// 0-based position of `p`, if ranked.
    pub fn position(&self, p: PageId) -> Option<usize> {
        self.position.get(&p).map(|&i| i as usize)
    }

    /// Score of `p`, if ranked.
    pub fn score(&self, p: PageId) -> Option<f64> {
        self.position(p).map(|i| self.scores[i])
    }

    /// `(page, score)` pairs in rank order.
    pub fn entries(&self) -> impl Iterator<Item = (PageId, f64)> + '_ {
        self.order.iter().copied().zip(self.scores.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_k_orders_by_score_desc() {
        let scores = [0.1, 0.5, 0.3, 0.5, 0.0];
        // Tie between ids 1 and 3 broken by id.
        assert_eq!(
            top_k_of_scores(&scores, 3),
            vec![PageId(1), PageId(3), PageId(2)]
        );
    }

    #[test]
    fn top_k_larger_than_n_returns_all() {
        let scores = [0.2, 0.1];
        assert_eq!(top_k_of_scores(&scores, 10).len(), 2);
    }

    #[test]
    fn top_k_zero_is_empty() {
        assert!(top_k_of_scores(&[0.5, 0.1], 0).is_empty());
    }

    #[test]
    fn top_k_select_path_matches_sort_path() {
        // Exercise the select_nth pre-pass (n > 4k) against the plain path.
        let scores: Vec<f64> = (0..100).map(|i| ((i * 37) % 100) as f64).collect();
        let fast = top_k_of_scores(&scores, 5);
        let mut all: Vec<u32> = (0..100).collect();
        all.sort_by(|&a, &b| {
            scores[b as usize]
                .partial_cmp(&scores[a as usize])
                .unwrap()
                .then(a.cmp(&b))
        });
        let slow: Vec<PageId> = all[..5].iter().map(|&i| PageId(i)).collect();
        assert_eq!(fast, slow);
    }

    #[test]
    fn ranking_positions_and_scores() {
        let r = Ranking::from_scores([(PageId(10), 0.2), (PageId(20), 0.7), (PageId(30), 0.1)]);
        assert_eq!(r.len(), 3);
        assert_eq!(r.order(), &[PageId(20), PageId(10), PageId(30)]);
        assert_eq!(r.position(PageId(20)), Some(0));
        assert_eq!(r.position(PageId(30)), Some(2));
        assert_eq!(r.position(PageId(99)), None);
        assert_eq!(r.score(PageId(10)), Some(0.2));
        assert_eq!(r.top_k(2), &[PageId(20), PageId(10)]);
    }

    #[test]
    #[should_panic(expected = "ranked twice")]
    fn duplicate_pages_panic() {
        let _ = Ranking::from_scores([(PageId(1), 0.5), (PageId(1), 0.4)]);
    }

    #[test]
    fn empty_ranking() {
        let r = Ranking::from_scores(std::iter::empty());
        assert!(r.is_empty());
        assert!(r.top_k(5).is_empty());
    }
}
