//! BlockRank-style distributed PageRank over **disjoint** partitions
//! (Kamvar, Haveliwala, Manning, Golub 2003; Wang & DeWitt's ServerRank
//! follows the same recipe with hosts as blocks).
//!
//! §2.2 positions these as the state of the art JXP improves on: "a
//! drawback from these approaches is the need of a particular distribution
//! of pages among the sites, where the graph fragments **have to be
//! disjoint** — a strong constraint, given that in most P2P networks peers
//! are completely autonomous and crawl and index Web data at their
//! discretion, resulting in arbitrarily overlapping graph fragments."
//!
//! The recipe: (1) run PageRank *inside* each block on intra-block links
//! only; (2) build the block-level coupling graph, weighting the edge
//! `I → J` by how much authority the pages of `I` send to pages of `J`;
//! (3) run PageRank on the block graph; (4) approximate each page's global
//! score as `local score × block rank`. The `baselines` experiment binary
//! compares this against JXP — and demonstrates that it is *inexpressible*
//! for overlapping fragments (which block would a shared page belong to?).

use crate::power::{pagerank, PageRankConfig};
use jxp_webgraph::{GraphBuilder, PageId};

/// Approximate global PageRank from a **disjoint** partition of the graph.
///
/// `block_of[p]` assigns every page to exactly one block (ids need not be
/// dense). Returns the approximate global score vector (sums to 1).
///
/// # Panics
/// Panics if `block_of.len() != g.num_nodes()` or the graph is empty.
pub fn block_pagerank(
    g: &jxp_webgraph::CsrGraph,
    block_of: &[u32],
    config: &PageRankConfig,
) -> Vec<f64> {
    assert_eq!(
        block_of.len(),
        g.num_nodes(),
        "partition must label every page"
    );
    assert!(g.num_nodes() > 0, "empty graph");
    let num_blocks = block_of.iter().map(|&b| b as usize + 1).max().unwrap();

    // ---- (1) local PageRank inside each block.
    // Build each block's intra subgraph with dense local ids.
    let mut members: Vec<Vec<u32>> = vec![Vec::new(); num_blocks];
    for (p, &b) in block_of.iter().enumerate() {
        members[b as usize].push(p as u32);
    }
    let mut local_index = vec![0u32; g.num_nodes()];
    for block in &members {
        for (i, &p) in block.iter().enumerate() {
            local_index[p as usize] = i as u32;
        }
    }
    let mut local_scores = vec![0.0f64; g.num_nodes()];
    for block in members.iter().filter(|m| !m.is_empty()) {
        let mut builder = GraphBuilder::new();
        builder.ensure_nodes(block.len());
        for &p in block {
            for q in g.successors(PageId(p)) {
                if block_of[q.index()] == block_of[p as usize] {
                    builder.add_edge(
                        PageId(local_index[p as usize]),
                        PageId(local_index[q.index()]),
                    );
                }
            }
        }
        let local = pagerank(&builder.build(), config);
        for &p in block {
            local_scores[p as usize] = local.score(PageId(local_index[p as usize]));
        }
    }

    // ---- (2) block coupling graph: weight(I → J) = Σ_{i∈I, i→j∈J}
    // localPR(i)/out(i). Represented as a dense matrix (block counts are
    // small: one per peer/host).
    let mut coupling = vec![0.0f64; num_blocks * num_blocks];
    for p in g.nodes() {
        let out = g.out_degree(p);
        if out == 0 {
            continue;
        }
        let share = local_scores[p.index()] / out as f64;
        let bi = block_of[p.index()] as usize;
        for q in g.successors(p) {
            let bj = block_of[q.index()] as usize;
            coupling[bi * num_blocks + bj] += share;
        }
    }

    // ---- (3) PageRank on the block graph (power iteration on the dense
    // row-normalized coupling matrix with the same damping).
    let eps = config.epsilon;
    let row_sums: Vec<f64> = (0..num_blocks)
        .map(|i| coupling[i * num_blocks..(i + 1) * num_blocks].iter().sum())
        .collect();
    let uniform = 1.0 / num_blocks as f64;
    let mut block_rank = vec![uniform; num_blocks];
    for _ in 0..config.max_iterations {
        let mut next = vec![(1.0 - eps) * uniform; num_blocks];
        let mut dangling = 0.0;
        for i in 0..num_blocks {
            if row_sums[i] <= 0.0 {
                dangling += block_rank[i];
                continue;
            }
            let scale = eps * block_rank[i] / row_sums[i];
            for j in 0..num_blocks {
                next[j] += scale * coupling[i * num_blocks + j];
            }
        }
        for x in next.iter_mut() {
            *x += eps * dangling * uniform;
        }
        let delta: f64 = block_rank
            .iter()
            .zip(next.iter())
            .map(|(a, b)| (a - b).abs())
            .sum();
        block_rank = next;
        if delta < config.tolerance {
            break;
        }
    }

    // ---- (4) combine: global(i) ≈ local(i) × blockRank(block(i)),
    // normalized to a distribution.
    let mut global: Vec<f64> = (0..g.num_nodes())
        .map(|p| local_scores[p] * block_rank[block_of[p] as usize])
        .collect();
    let total: f64 = global.iter().sum();
    if total > 0.0 {
        for x in global.iter_mut() {
            *x /= total;
        }
    }
    global
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{footrule_distance, top_k_overlap};
    use crate::Ranking;
    use jxp_webgraph::generators::{CategorizedGraph, CategorizedParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ranking(scores: &[f64]) -> Ranking {
        Ranking::from_scores(
            scores
                .iter()
                .enumerate()
                .map(|(i, &s)| (PageId(i as u32), s + i as f64 * 1e-15)),
        )
    }

    #[test]
    fn approximates_pagerank_on_block_structured_graphs() {
        // Strong block structure (few cross links) is BlockRank's home turf.
        let cg = CategorizedGraph::generate(
            &CategorizedParams {
                num_categories: 5,
                nodes_per_category: 100,
                intra_out_per_node: 4,
                cross_fraction: 0.05,
            },
            &mut StdRng::seed_from_u64(1),
        );
        let truth = pagerank(&cg.graph, &PageRankConfig::default()).into_scores();
        let block_of: Vec<u32> = cg.category_of.iter().map(|&c| c as u32).collect();
        let approx = block_pagerank(&cg.graph, &block_of, &PageRankConfig::default());
        let f = footrule_distance(&ranking(&approx), &ranking(&truth), 50);
        assert!(f < 0.25, "footrule {f}");
        let ov = top_k_overlap(&ranking(&approx), &ranking(&truth), 50);
        assert!(ov > 0.7, "overlap {ov}");
    }

    #[test]
    fn result_is_a_probability_distribution() {
        let cg = CategorizedGraph::generate(
            &CategorizedParams {
                num_categories: 3,
                nodes_per_category: 60,
                intra_out_per_node: 3,
                cross_fraction: 0.2,
            },
            &mut StdRng::seed_from_u64(2),
        );
        let block_of: Vec<u32> = cg.category_of.iter().map(|&c| c as u32).collect();
        let approx = block_pagerank(&cg.graph, &block_of, &PageRankConfig::default());
        let total: f64 = approx.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "total {total}");
        assert!(approx.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn single_block_equals_plain_pagerank() {
        let cg = CategorizedGraph::generate(
            &CategorizedParams {
                num_categories: 1,
                nodes_per_category: 80,
                intra_out_per_node: 3,
                cross_fraction: 0.0,
            },
            &mut StdRng::seed_from_u64(3),
        );
        let truth = pagerank(&cg.graph, &PageRankConfig::default()).into_scores();
        let approx = block_pagerank(&cg.graph, &vec![0; 80], &PageRankConfig::default());
        for (a, t) in approx.iter().zip(truth.iter()) {
            assert!((a - t).abs() < 1e-6, "{a} vs {t}");
        }
    }

    #[test]
    fn degrades_when_blocks_do_not_match_structure() {
        // Random (structure-blind) partition: the approximation worsens —
        // the block assumption is doing real work.
        let cg = CategorizedGraph::generate(
            &CategorizedParams {
                num_categories: 5,
                nodes_per_category: 100,
                intra_out_per_node: 4,
                cross_fraction: 0.05,
            },
            &mut StdRng::seed_from_u64(4),
        );
        let truth = pagerank(&cg.graph, &PageRankConfig::default()).into_scores();
        let aligned: Vec<u32> = cg.category_of.iter().map(|&c| c as u32).collect();
        let shuffled: Vec<u32> = (0..500u32).map(|p| p % 5).collect();
        let cfg = PageRankConfig::default();
        let f_aligned = footrule_distance(
            &ranking(&block_pagerank(&cg.graph, &aligned, &cfg)),
            &ranking(&truth),
            50,
        );
        let f_shuffled = footrule_distance(
            &ranking(&block_pagerank(&cg.graph, &shuffled, &cfg)),
            &ranking(&truth),
            50,
        );
        assert!(
            f_shuffled > f_aligned,
            "structure-blind blocks should hurt: {f_shuffled} vs {f_aligned}"
        );
    }

    #[test]
    #[should_panic(expected = "label every page")]
    fn partition_size_mismatch_panics() {
        let cg = CategorizedGraph::generate(
            &CategorizedParams {
                num_categories: 1,
                nodes_per_category: 10,
                intra_out_per_node: 2,
                cross_fraction: 0.0,
            },
            &mut StdRng::seed_from_u64(5),
        );
        let _ = block_pagerank(&cg.graph, &[0, 1], &PageRankConfig::default());
    }
}
