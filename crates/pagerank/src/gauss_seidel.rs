//! Gauss–Seidel PageRank.
//!
//! The paper's opening motivation is that PR computation "is quite
//! expensive", citing work on speeding it up [20, 27]. The classic
//! in-place (Gauss–Seidel) iteration is the simplest of those
//! accelerations: each update uses the *already-updated* scores of
//! preceding pages within the same sweep, roughly halving the number of
//! sweeps needed compared to Jacobi-style power iteration. Same fixed
//! point, same configuration — a drop-in alternative for the centralized
//! ground-truth computation on larger collections.

use crate::power::{PageRankConfig, PageRankResult};
use jxp_webgraph::{CsrGraph, PageId};

/// Compute PageRank by Gauss–Seidel sweeps. Produces the same fixed point
/// as [`pagerank`](crate::pagerank) (within tolerance), usually in fewer
/// sweeps.
///
/// # Panics
/// Panics if the graph is empty or the config invalid.
pub fn pagerank_gauss_seidel(g: &CsrGraph, config: &PageRankConfig) -> PageRankResult {
    config.validate();
    let n = g.num_nodes();
    assert!(n > 0, "PageRank of an empty graph is undefined");
    let eps = config.epsilon;
    let uniform = 1.0 / n as f64;
    let inv_out: Vec<f64> = (0..n)
        .map(|v| {
            let d = g.out_degree(PageId(v as u32));
            if d == 0 {
                0.0
            } else {
                1.0 / d as f64
            }
        })
        .collect();
    let is_dangling: Vec<bool> = (0..n)
        .map(|v| g.out_degree(PageId(v as u32)) == 0)
        .collect();

    let mut x = vec![uniform; n];
    // Dangling mass is maintained incrementally so in-sweep updates see
    // the freshest value (that is the point of Gauss–Seidel).
    let mut dangling_mass: f64 = is_dangling
        .iter()
        .zip(x.iter())
        .filter(|(d, _)| **d)
        .map(|(_, v)| v)
        .sum();

    let mut iterations = 0;
    let mut converged = false;
    while iterations < config.max_iterations {
        iterations += 1;
        let mut delta = 0.0;
        // Sweep in descending id order: generated and crawled Web graphs
        // list pages oldest-first and links point mostly new → old, so a
        // descending sweep updates most predecessors before their targets
        // — the ordering that gives Gauss–Seidel its edge over Jacobi.
        for q in (0..n).rev() {
            let mut sum = 0.0;
            for p in g.predecessors(PageId(q as u32)) {
                sum += x[p.index()] * inv_out[p.index()];
            }
            let new = (1.0 - eps) * uniform + eps * (sum + dangling_mass * uniform);
            delta += (new - x[q]).abs();
            if is_dangling[q] {
                dangling_mass += new - x[q];
            }
            x[q] = new;
        }
        if delta < config.tolerance {
            converged = true;
            break;
        }
    }
    // Gauss–Seidel does not conserve total mass mid-stream; normalize.
    let total: f64 = x.iter().sum();
    if total > 0.0 {
        for v in x.iter_mut() {
            *v /= total;
        }
    }
    PageRankResult::from_parts(x, iterations, converged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{pagerank, PageRankConfig};
    use jxp_webgraph::generators::preferential_attachment;
    use jxp_webgraph::GraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matches_power_iteration_fixed_point() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = preferential_attachment(500, 3, &mut rng);
        let cfg = PageRankConfig {
            tolerance: 1e-12,
            ..Default::default()
        };
        let a = pagerank(&g, &cfg);
        let b = pagerank_gauss_seidel(&g, &cfg);
        for (x, y) in a.scores().iter().zip(b.scores().iter()) {
            assert!((x - y).abs() < 1e-8, "{x} vs {y}");
        }
    }

    #[test]
    fn converges_in_fewer_sweeps() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = preferential_attachment(1000, 4, &mut rng);
        let cfg = PageRankConfig {
            tolerance: 1e-10,
            ..Default::default()
        };
        let power = pagerank(&g, &cfg);
        let gs = pagerank_gauss_seidel(&g, &cfg);
        assert!(
            gs.iterations() < power.iterations(),
            "gauss-seidel {} vs power {}",
            gs.iterations(),
            power.iterations()
        );
        assert!(gs.converged());
    }

    #[test]
    fn handles_dangling_pages() {
        let mut b = GraphBuilder::new();
        b.add_edge(PageId(0), PageId(1));
        b.add_edge(PageId(2), PageId(1)); // 1 is dangling
        let g = b.build();
        let cfg = PageRankConfig {
            tolerance: 1e-13,
            ..Default::default()
        };
        let a = pagerank(&g, &cfg);
        let gs = pagerank_gauss_seidel(&g, &cfg);
        for (x, y) in a.scores().iter().zip(gs.scores().iter()) {
            assert!((x - y).abs() < 1e-8, "{x} vs {y}");
        }
        let total: f64 = gs.scores().iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty graph")]
    fn empty_graph_panics() {
        let g = GraphBuilder::new().build();
        let _ = pagerank_gauss_seidel(&g, &PageRankConfig::default());
    }
}
