//! Persistent scoped worker pool.
//!
//! Every parallel section in the workspace used to spawn OS threads via
//! `std::thread::scope` — once per round of the meeting engine, once per
//! power-iteration sweep. Spawn/join latency then sits on the critical
//! path between every pair of rounds, and on short rounds it dominates
//! the work itself. This crate replaces that with **long-lived workers**
//! that park on a condvar between rounds; the handoff cost of a round is
//! one queue lock plus a wakeup instead of N thread spawns.
//!
//! # Execution model
//!
//! [`WorkerPool::run_with`] executes one *round*: a vector of tasks plus
//! a `meanwhile` closure that runs on the calling thread while the pool
//! chews on the tasks (the meeting engine uses it to draw the next
//! round's schedule — see `jxp-p2pnet`'s pipelining notes).
//!
//! * Tasks are **dealt round-robin** into `workers` stripes: stripe `s`
//!   owns tasks `s, s + workers, s + 2·workers, …`. The deal is the
//!   deterministic assignment; callers must only submit rounds whose
//!   results are **placement-invariant** (each task writes state no other
//!   task touches), which makes the next point safe:
//! * Workers **steal**: a worker drains its own stripe, then scans the
//!   other stripes for leftovers. Stealing only moves tasks between
//!   executors, never changes what a task computes, so results are
//!   bit-identical whether a task ran on its dealt worker, a thief, or
//!   the caller.
//! * The **calling thread participates**: it owns stripe 0. `workers`
//!   therefore counts the caller — `run_with(4, …)` puts 3 pool workers
//!   plus the caller on the round. After `meanwhile` returns the caller
//!   drains stripe 0 (stealing the rest), then blocks until every
//!   in-flight task has finished.
//!
//! `run_with` does not return until all tasks have executed *and* every
//! pool worker has exited the round — no borrow handed in via a task can
//! be observed by a worker after the call returns, which is what makes
//! the lifetime erasure below sound.
//!
//! # Lifecycle
//!
//! Workers spawn lazily ([`WorkerPool::ensure_workers`]) and live until
//! the pool is dropped. [`Drop`] signals shutdown and **joins every
//! worker** — the pool never leaks detached threads (analyze rule C4).
//! [`global`] returns a process-wide shared pool for code that wants to
//! amortize workers across subsystems (the meeting engine, the chunked
//! power iteration, and the cluster driver all share it).
//!
//! # Panics
//!
//! A task that panics on a pool worker is caught there; the round still
//! drains (other executors keep stealing), and `run_with` re-raises a
//! `"worker panicked"` panic on the caller once the round is quiescent.
//! A panic in `meanwhile` (or in a task run by the caller) unwinds the
//! caller directly — a drop guard first waits for the pool workers to
//! finish the round, so borrowed task state never outlives the call.

use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};
use std::thread::JoinHandle;

/// Lock that survives a poisoned mutex: pool bookkeeping stays usable
/// after a task panic (the panic itself is reported separately).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn wait<'a, T>(cv: &Condvar, g: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(g).unwrap_or_else(PoisonError::into_inner)
}

/// What one [`WorkerPool::run_with`] round did, for telemetry.
///
/// Scheduling-dependent quantities (`stolen`) vary with thread count and
/// machine load; record them only in histograms/gauges, never in the
/// counters or events that the determinism tests compare bit-for-bit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoundStats {
    /// Tasks the round carried.
    pub tasks: u64,
    /// Tasks executed by an executor other than the one they were dealt
    /// to (work-stealing traffic, including steals by the caller).
    pub stolen: u64,
}

/// A round's executable face, with task and closure types erased so the
/// worker queue can hold rounds of any shape.
trait StripeRun: Send + Sync {
    /// Drain stripe `stripe`, then steal from the others until no task
    /// remains anywhere in the round.
    fn run(&self, stripe: usize);
}

/// Completion tracking for one round. Holds no task data (and therefore
/// no borrowed lifetimes) — workers may touch it freely after the round
/// state itself is gone.
struct RoundSync {
    /// Tasks not yet finished. A task's slot writes happen-before the
    /// caller's reads via the `AcqRel` decrement here.
    pending: AtomicUsize,
    /// Pool-worker jobs that have fully exited `StripeRun::run` (and
    /// dropped their round handle).
    exited: AtomicUsize,
    /// Pool-worker jobs submitted for this round.
    jobs: usize,
    panicked: AtomicBool,
    gate: Mutex<()>,
    done: Condvar,
}

impl RoundSync {
    fn new(tasks: usize, jobs: usize) -> Self {
        RoundSync {
            pending: AtomicUsize::new(tasks),
            exited: AtomicUsize::new(0),
            jobs,
            panicked: AtomicBool::new(false),
            gate: Mutex::new(()),
            done: Condvar::new(),
        }
    }

    fn task_finished(&self) {
        if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.notify();
        }
    }

    fn job_exited(&self) {
        self.exited.fetch_add(1, Ordering::AcqRel);
        self.notify();
    }

    fn notify(&self) {
        // Taking the gate orders the notify after any waiter's
        // check-then-wait, so no wakeup is lost.
        let _g = lock(&self.gate);
        self.done.notify_all();
    }

    /// Block until the round is quiescent: every task finished (or a
    /// worker panicked mid-task) and every pool-worker job has exited.
    fn wait_quiescent(&self) {
        let mut g = lock(&self.gate);
        loop {
            let tasks_done =
                self.pending.load(Ordering::Acquire) == 0 || self.panicked.load(Ordering::Acquire);
            if tasks_done && self.exited.load(Ordering::Acquire) == self.jobs {
                return;
            }
            g = wait(&self.done, g);
        }
    }
}

/// The live state of one round: dealt stripes plus the task closure.
struct RoundState<T, F> {
    stripes: Vec<Mutex<Vec<T>>>,
    f: F,
    stolen: AtomicU64,
    sync: Arc<RoundSync>,
}

impl<T: Send, F: Fn(T) + Send + Sync> StripeRun for RoundState<T, F> {
    fn run(&self, stripe: usize) {
        let w = self.stripes.len();
        for k in 0..w {
            let s = (stripe + k) % w;
            loop {
                // Pop under the stripe lock, execute outside it.
                let task = lock(&self.stripes[s]).pop();
                let Some(task) = task else { break };
                if k > 0 {
                    self.stolen.fetch_add(1, Ordering::AcqRel);
                }
                (self.f)(task);
                self.sync.task_finished();
            }
        }
    }
}

/// One queued unit of pool work: "participate in `round` as `stripe`".
struct WorkItem {
    round: Arc<dyn StripeRun>,
    stripe: usize,
    sync: Arc<RoundSync>,
}

struct Queue {
    items: VecDeque<WorkItem>,
    shutdown: bool,
}

struct PoolShared {
    queue: Mutex<Queue>,
    available: Condvar,
}

fn worker_loop(shared: Arc<PoolShared>) {
    loop {
        let item = {
            let mut q = lock(&shared.queue);
            loop {
                if let Some(item) = q.items.pop_front() {
                    break Some(item);
                }
                if q.shutdown {
                    break None;
                }
                q = wait(&shared.available, q);
            }
        };
        let Some(WorkItem {
            round,
            stripe,
            sync,
        }) = item
        else {
            return;
        };
        // A panicking task must not kill the worker or wedge the round:
        // catch it, flag the round, and keep serving.
        if std::panic::catch_unwind(AssertUnwindSafe(|| round.run(stripe))).is_err() {
            sync.panicked.store(true, Ordering::Release);
        }
        // Drop the round handle *before* signalling exit: once `exited`
        // reaches `jobs`, no worker holds any reference into the round's
        // borrowed task state.
        drop(round);
        sync.job_exited();
    }
}

/// A persistent pool of parked worker threads. See the module docs for
/// the execution model; [`global`] for the process-wide shared instance.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl Default for WorkerPool {
    fn default() -> Self {
        Self::new()
    }
}

impl WorkerPool {
    /// An empty pool; workers spawn lazily as rounds demand them.
    pub fn new() -> Self {
        WorkerPool {
            shared: Arc::new(PoolShared {
                queue: Mutex::new(Queue {
                    items: VecDeque::new(),
                    shutdown: false,
                }),
                available: Condvar::new(),
            }),
            handles: Mutex::new(Vec::new()),
        }
    }

    /// Grow the pool to at least `n` workers (never shrinks).
    pub fn ensure_workers(&self, n: usize) {
        let mut handles = lock(&self.handles);
        while handles.len() < n {
            let shared = Arc::clone(&self.shared);
            let handle = std::thread::Builder::new()
                .name(format!("jxp-pool-{}", handles.len()))
                .spawn(move || worker_loop(shared))
                .expect("spawn jxp-pool worker");
            handles.push(handle);
        }
    }

    /// Workers currently spawned.
    pub fn spawned(&self) -> usize {
        lock(&self.handles).len()
    }

    /// Rounds' worker jobs queued but not yet picked up — a backlog
    /// indicator for telemetry (racy by nature; histogram material).
    pub fn queued(&self) -> usize {
        lock(&self.shared.queue).items.len()
    }

    /// Execute one round of `tasks` on `workers` executors (the caller
    /// plus `workers - 1` pool workers) while `meanwhile` runs on the
    /// calling thread; returns `meanwhile`'s value and the round's
    /// stats once every task has finished and the pool is quiescent.
    ///
    /// Tasks are dealt round-robin and may be stolen, so the caller's
    /// tasks must be **placement-invariant**: each task must write only
    /// state no other task of the round touches. `workers <= 1` (or a
    /// round of 0–1 tasks) degenerates to an inline serial loop that
    /// never touches pool threads.
    ///
    /// # Panics
    /// Re-raises task panics (after the round drains), and propagates
    /// panics from `meanwhile` once pool workers have left the round.
    pub fn run_with<T, F, M, R>(
        &self,
        workers: usize,
        tasks: Vec<T>,
        f: F,
        meanwhile: M,
    ) -> (R, RoundStats)
    where
        T: Send,
        F: Fn(T) + Send + Sync,
        M: FnOnce() -> R,
    {
        let total = tasks.len();
        let workers = workers.min(total).max(1);
        if workers == 1 {
            // Tasks in deal order, then `meanwhile` — the same program
            // order the parallel path's caller observes at its barrier.
            for t in tasks {
                f(t);
            }
            let r = meanwhile();
            return (
                r,
                RoundStats {
                    tasks: total as u64,
                    stolen: 0,
                },
            );
        }
        self.ensure_workers(workers - 1);

        let mut stripes: Vec<Vec<T>> = (0..workers).map(|_| Vec::new()).collect();
        for (i, t) in tasks.into_iter().enumerate() {
            stripes[i % workers].push(t);
        }
        for s in &mut stripes {
            // Stripes pop from the back; reverse so consumption follows
            // deal order (cosmetic — results are placement-invariant).
            s.reverse();
        }
        let sync = Arc::new(RoundSync::new(total, workers - 1));
        let state = Arc::new(RoundState {
            stripes: stripes.into_iter().map(Mutex::new).collect(),
            f,
            stolen: AtomicU64::new(0),
            sync: Arc::clone(&sync),
        });

        {
            // SAFETY: the queue holds `'static` trait objects, but this
            // round borrows the caller's stack (`T` and `F` may capture
            // `&mut` state). Erasing the lifetime is sound because this
            // function does not return — or unwind past `_guard` — until
            // `sync` reports quiescence: every task executed and every
            // worker job exited after dropping its `Arc<dyn StripeRun>`
            // clone. No pool thread can reach the borrowed state after
            // that, and the only surviving handle (`state`) lives here.
            let erased: Arc<dyn StripeRun + '_> = Arc::clone(&state) as _;
            let erased: Arc<dyn StripeRun> = unsafe {
                std::mem::transmute::<Arc<dyn StripeRun + '_>, Arc<dyn StripeRun + 'static>>(erased)
            };
            let mut q = lock(&self.shared.queue);
            for stripe in 1..workers {
                q.items.push_back(WorkItem {
                    round: Arc::clone(&erased),
                    stripe,
                    sync: Arc::clone(&sync),
                });
            }
            drop(q);
            self.shared.available.notify_all();
        }

        // If `meanwhile` or a caller-run task unwinds, the guard still
        // waits out the pool workers (they drain the round on their own)
        // before the unwind releases the borrowed task state.
        let _guard = WaitOnDrop(&sync);
        let r = meanwhile();
        if let Err(payload) = std::panic::catch_unwind(AssertUnwindSafe(|| state.run(0))) {
            // A caller-run task panicked after being popped, so `pending`
            // can never drain to zero. Flag the round — quiescence
            // accepts `panicked` in lieu of a zero count — or the
            // guard's wait would deadlock on our own lost task.
            sync.panicked.store(true, Ordering::Release);
            std::panic::resume_unwind(payload);
        }
        sync.wait_quiescent();
        assert!(
            !sync.panicked.load(Ordering::Acquire),
            "jxp-pool worker panicked while executing a round task"
        );
        let stolen = state.stolen.load(Ordering::Acquire);
        (
            r,
            RoundStats {
                tasks: total as u64,
                stolen,
            },
        )
    }

    /// [`run_with`](WorkerPool::run_with) without a `meanwhile` phase:
    /// the caller joins execution immediately.
    pub fn run_dealt<T, F>(&self, workers: usize, tasks: Vec<T>, f: F) -> RoundStats
    where
        T: Send,
        F: Fn(T) + Send + Sync,
    {
        self.run_with(workers, tasks, f, || ()).1
    }
}

struct WaitOnDrop<'a>(&'a RoundSync);

impl Drop for WaitOnDrop<'_> {
    fn drop(&mut self) {
        self.0.wait_quiescent();
    }
}

impl Drop for WorkerPool {
    /// Shut down and **join** every worker: no thread outlives the pool.
    fn drop(&mut self) {
        {
            let mut q = lock(&self.shared.queue);
            q.shutdown = true;
        }
        self.shared.available.notify_all();
        for handle in lock(&self.handles).drain(..) {
            // Workers catch task panics themselves; a join error would
            // mean the loop infrastructure panicked — surface it.
            handle
                .join()
                .expect("jxp-pool worker terminated abnormally");
        }
    }
}

static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();

/// The process-wide shared pool. Workers spawn on first demand and are
/// shared by every subsystem (meeting rounds, chunked power iteration,
/// cluster drivers), so repeated parallel sections reuse warm threads.
/// Concurrent rounds from different threads interleave safely: the
/// caller of each round participates in it, so a round always makes
/// progress even when every pool worker is busy elsewhere.
pub fn global() -> &'static WorkerPool {
    GLOBAL.get_or_init(WorkerPool::new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn round_executes_every_task_exactly_once() {
        let pool = WorkerPool::new();
        let n = 1000;
        let mut out = vec![0u32; n];
        let tasks: Vec<(usize, &mut u32)> = out.iter_mut().enumerate().collect();
        let (ret, stats) = pool.run_with(4, tasks, |(i, slot)| *slot = i as u32 + 1, || 42);
        assert_eq!(ret, 42);
        assert_eq!(stats.tasks, n as u64);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as u32 + 1, "task {i} ran wrong or not at all");
        }
    }

    #[test]
    fn meanwhile_overlaps_execution_and_caller_helps() {
        let pool = WorkerPool::new();
        let executed = AtomicUsize::new(0);
        // One slow stripe: the caller's post-meanwhile help loop must
        // steal the rest rather than idle behind it.
        let tasks: Vec<usize> = (0..64).collect();
        let (drawn, stats) = pool.run_with(
            2,
            tasks,
            |_t| {
                executed.fetch_add(1, Ordering::AcqRel);
            },
            || "next-round-schedule",
        );
        assert_eq!(drawn, "next-round-schedule");
        assert_eq!(executed.load(Ordering::Acquire), 64);
        assert_eq!(stats.tasks, 64);
    }

    #[test]
    fn serial_fallback_never_spawns_workers() {
        let pool = WorkerPool::new();
        let mut acc = 0u64;
        let tasks: Vec<u64> = (1..=10).collect();
        // With workers = 1 the tasks run inline on the caller; a single
        // &mut capture proves no other thread is involved.
        let acc_ref = &mut acc;
        let (_, stats) = pool.run_with(1, tasks, |_| (), || ());
        *acc_ref += 1;
        assert_eq!(stats.stolen, 0);
        assert_eq!(pool.spawned(), 0);
        assert_eq!(acc, 1);
    }

    #[test]
    fn single_task_rounds_stay_inline() {
        let pool = WorkerPool::new();
        let stats = pool.run_dealt(8, vec![7usize], |_| ());
        assert_eq!(stats.tasks, 1);
        assert_eq!(pool.spawned(), 0, "a 1-task round must not engage the pool");
    }

    #[test]
    fn pool_reuse_spawns_workers_once() {
        let pool = WorkerPool::new();
        for _ in 0..20 {
            let stats = pool.run_dealt(4, (0..32).collect::<Vec<usize>>(), |_| ());
            assert_eq!(stats.tasks, 32);
        }
        assert_eq!(pool.spawned(), 3, "workers persist across rounds");
    }

    #[test]
    fn drop_joins_all_workers() {
        let pool = WorkerPool::new();
        pool.ensure_workers(4);
        assert_eq!(pool.spawned(), 4);
        let shared = Arc::downgrade(&pool.shared);
        drop(pool);
        // Every worker held an Arc<PoolShared>; all joined ⇒ all clones
        // dropped ⇒ the weak can no longer upgrade.
        assert!(
            shared.upgrade().is_none(),
            "a worker outlived WorkerPool::drop"
        );
    }

    #[test]
    fn results_are_placement_invariant_across_worker_counts() {
        // The pool guarantees *where* a task runs never changes *what*
        // it computes: disjoint writes come out identical for any
        // worker count, steal pattern, or pool reuse state.
        let run = |workers: usize| {
            let pool = WorkerPool::new();
            let n = 4096 + 37;
            let mut out = vec![0.0f64; n];
            let tasks: Vec<(usize, &mut f64)> = out.iter_mut().enumerate().collect();
            pool.run_dealt(workers, tasks, |(i, slot)| {
                *slot = (i as f64 + 1.0).sqrt() * 0.37;
            });
            out
        };
        let want = run(1);
        for workers in [2, 3, 8] {
            assert_eq!(run(workers), want, "divergence at {workers} workers");
        }
    }

    #[test]
    fn task_panic_on_worker_is_reported_on_caller() {
        let pool = WorkerPool::new();
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            // Dealt across 4 stripes, some task panics on a pool worker
            // (and possibly on the caller — both paths must surface it).
            pool.run_dealt(4, (0..64).collect::<Vec<usize>>(), |t| {
                if t % 17 == 3 {
                    panic!("boom");
                }
            });
        }));
        assert!(caught.is_err(), "task panic was swallowed");
        // The pool survives the panic and keeps serving rounds.
        let stats = pool.run_dealt(4, (0..16).collect::<Vec<usize>>(), |_| ());
        assert_eq!(stats.tasks, 16);
    }

    #[test]
    fn concurrent_rounds_share_the_pool() {
        let pool = Arc::new(WorkerPool::new());
        pool.ensure_workers(2);
        let done = AtomicUsize::new(0);
        let done = &done;
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let pool = Arc::clone(&pool);
                scope.spawn(move || {
                    for _ in 0..10 {
                        pool.run_dealt(3, (0..50).collect::<Vec<usize>>(), |_| ());
                    }
                    done.fetch_add(1, Ordering::AcqRel);
                });
            }
        });
        assert_eq!(done.load(Ordering::Acquire), 4);
    }

    #[test]
    fn global_pool_is_shared_and_grows_on_demand() {
        let before = global().spawned();
        global().run_dealt(3, (0..16).collect::<Vec<usize>>(), |_| ());
        assert!(global().spawned() >= 2.max(before));
        // Same instance on every call.
        assert!(std::ptr::eq(global(), global()));
    }

    #[test]
    fn stolen_counts_cross_stripe_executions_only() {
        let pool = WorkerPool::new();
        // Stripe 1's worker sleeps via a long task; everything else gets
        // eaten by caller + thieves. We can't assert exact steal counts
        // (scheduling-dependent) — only that the accounting is bounded.
        let stats = pool.run_dealt(4, (0..100).collect::<Vec<usize>>(), |_| ());
        assert_eq!(stats.tasks, 100);
        assert!(stats.stolen <= 100);
    }
}

#[cfg(test)]
mod review_tests {
    use super::*;

    #[test]
    fn task_panic_on_caller_propagates() {
        let pool = WorkerPool::new();
        // stripe 0 (caller): panic task; stripe 1 (worker): slow task.
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run_dealt(2, vec![0usize, 1usize], |t| {
                if t == 0 {
                    panic!("caller boom");
                } else {
                    std::thread::sleep(std::time::Duration::from_millis(200));
                }
            });
        }));
        assert!(caught.is_err());
    }
}
