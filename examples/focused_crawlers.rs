//! The paper's §6.1 scenario end-to-end: a categorized Web-like graph,
//! 100 autonomous peers with simulated focused crawlers, random meetings,
//! and a live report of how the decentralized ranking approaches the
//! centralized one.
//!
//! Run with: `cargo run --release --example focused_crawlers`

use jxp::core::selection::SelectionStrategy;
use jxp::core::JxpConfig;
use jxp::p2pnet::assign::{assign_by_crawlers, mean_pairwise_jaccard, CrawlerParams};
use jxp::p2pnet::{Network, NetworkConfig};
use jxp::pagerank::{metrics, pagerank, PageRankConfig};
use jxp::webgraph::generators::{CategorizedGraph, CategorizedParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // A 10-category Web-like graph (a small cousin of the paper's Amazon
    // collection — bump nodes_per_category for a bigger run).
    let cg = CategorizedGraph::generate(
        &CategorizedParams {
            num_categories: 10,
            nodes_per_category: 800,
            intra_out_per_node: 4,
            cross_fraction: 0.1,
        },
        &mut StdRng::seed_from_u64(11),
    );
    let n = cg.graph.num_nodes();
    println!(
        "global graph: {} pages, {} links, {:.1}% of edges intra-category",
        n,
        cg.graph.num_edges(),
        cg.intra_category_edge_fraction() * 100.0
    );

    // 100 thematic crawlers, overlapping fragments (§6.1).
    let fragments = assign_by_crawlers(
        &cg,
        &CrawlerParams {
            peers_per_category: 10,
            seeds_per_peer: 3,
            max_depth: 5,
            max_pages: Some(n / 60),
            max_pages_jitter: 0.8,
            off_category_follow_prob: 0.5,
        },
        &mut StdRng::seed_from_u64(12),
    );
    let sizes: Vec<usize> = fragments.iter().map(|f| f.num_pages()).collect();
    println!(
        "100 peers: fragment sizes {}..{} pages, mean pairwise Jaccard {:.3}",
        sizes.iter().min().unwrap(),
        sizes.iter().max().unwrap(),
        mean_pairwise_jaccard(&fragments)
    );

    // Ground truth for the report (the network itself never sees this).
    let truth = pagerank(&cg.graph, &PageRankConfig::default()).into_scores();
    let truth_ranking = jxp::core::evaluate::centralized_ranking(&truth);

    let mut net = Network::new(
        fragments,
        n as u64,
        NetworkConfig {
            jxp: JxpConfig::optimized(),
            strategy: SelectionStrategy::Random,
            ..Default::default()
        },
        13,
    );

    println!(
        "\n{:>9} {:>10} {:>14} {:>10}",
        "meetings", "footrule", "linear error", "MB sent"
    );
    for _ in 0..10 {
        net.run(150);
        let ranking = net.total_ranking();
        println!(
            "{:>9} {:>10.4} {:>14.3e} {:>10.2}",
            net.meetings(),
            metrics::footrule_distance(&ranking, &truth_ranking, 200),
            metrics::linear_score_error(&ranking, &truth_ranking, 200),
            net.bandwidth().total_bytes() as f64 / 1e6
        );
    }

    let ranking = net.total_ranking();
    println!("\ntop-5 pages, decentralized vs centralized:");
    for (rank, &page) in ranking.top_k(5).iter().enumerate() {
        println!(
            "  #{} page {page}: jxp {:.5}, true {:.5}, true rank {}",
            rank + 1,
            ranking.score(page).unwrap(),
            truth[page.index()],
            truth_ranking.position(page).map(|p| p + 1).unwrap_or(0),
        );
    }
    let overlap = metrics::top_k_overlap(&ranking, &truth_ranking, 100);
    println!(
        "\ntop-100 overlap with centralized PageRank: {:.0}%",
        overlap * 100.0
    );
}
