//! Churn: peers keep joining and leaving while JXP keeps running.
//!
//! The paper (§5.3) designed JXP to "handle high dynamics" even though the
//! convergence proof assumes a static network. This example drives a
//! network through aggressive churn — every few meetings a peer joins or
//! leaves — and shows that (a) nothing breaks, (b) mass stays conserved at
//! every peer, and (c) the decentralized ranking still tracks centralized
//! PageRank.
//!
//! Run with: `cargo run --release --example churn`

use jxp::core::JxpConfig;
use jxp::p2pnet::assign::{assign_by_crawlers, CrawlerParams};
use jxp::p2pnet::churn::{ChurnEvent, ChurnModel};
use jxp::p2pnet::{Network, NetworkConfig};
use jxp::pagerank::{metrics, pagerank, PageRankConfig};
use jxp::webgraph::generators::{CategorizedGraph, CategorizedParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let cg = CategorizedGraph::generate(
        &CategorizedParams {
            num_categories: 5,
            nodes_per_category: 600,
            intra_out_per_node: 4,
            cross_fraction: 0.15,
        },
        &mut StdRng::seed_from_u64(31),
    );
    let n = cg.graph.num_nodes();
    let truth = pagerank(&cg.graph, &PageRankConfig::default()).into_scores();
    let truth_ranking = jxp::core::evaluate::centralized_ranking(&truth);

    // A pool of crawled fragments; joining peers draw from it.
    let pool = assign_by_crawlers(
        &cg,
        &CrawlerParams {
            peers_per_category: 8,
            seeds_per_peer: 3,
            max_depth: 5,
            max_pages: Some(n / 30),
            max_pages_jitter: 0.6,
            off_category_follow_prob: 0.5,
        },
        &mut StdRng::seed_from_u64(32),
    );
    let initial: Vec<_> = pool[..20].to_vec();
    let mut net = Network::new(
        initial,
        n as u64,
        NetworkConfig {
            jxp: JxpConfig::optimized(),
            ..Default::default()
        },
        33,
    );

    let model = ChurnModel {
        leave_prob: 0.10,
        join_prob: 0.12,
        min_peers: 8,
        max_peers: 40,
    };
    let mut rng = StdRng::seed_from_u64(34);
    let mut cursor = 20usize;
    let mut joins = 0u32;
    let mut leaves = 0u32;

    println!(
        "{:>9} {:>7} {:>7} {:>7} {:>10}",
        "meetings", "peers", "joins", "leaves", "footrule"
    );
    for epoch in 1..=12 {
        for _ in 0..100 {
            net.step();
            match model.tick(&mut net, &pool, &mut cursor, &mut rng) {
                ChurnEvent::Joined(_) | ChurnEvent::Rejoined(_) => joins += 1,
                ChurnEvent::Left(_) => leaves += 1,
                ChurnEvent::None => {}
            }
        }
        // Everything the network believes must still be a probability mass.
        for p in net.peers() {
            jxp::core::invariants::check_mass_conservation(p)
                .expect("mass conservation violated under churn");
        }
        let f = metrics::footrule_distance(&net.total_ranking(), &truth_ranking, 100);
        println!(
            "{:>9} {:>7} {:>7} {:>7} {:>10.4}",
            epoch * 100,
            net.num_peers(),
            joins,
            leaves,
            f
        );
    }
    println!(
        "\nsurvived {joins} joins and {leaves} leaves; every peer still holds a \
         valid score distribution and the ranking keeps tracking PageRank."
    );
}
