//! Programmatic use of the `jxp-analyze` rule engine.
//!
//! The CLI (`cargo run -p jxp-analyze -- check`) walks the workspace,
//! but the engine itself is a plain library function over source
//! strings: `analyze_source(rel_path, source, &config)`. This example
//! feeds it a small snippet that trips every rule once, then shows a
//! reasoned pragma silencing one of the findings.
//!
//! Run with: `cargo run --example analyze_self`

use jxp_analyze::{analyze_source, Config, RuleId};

fn main() {
    let config = Config::default();

    // A snippet with one violation per rule. The path decides which
    // path-gated rules apply: crates/core/src is determinism-critical
    // (D1) and outside the timing whitelist (D2); C1/C2 apply
    // everywhere.
    let bad = r#"
use std::collections::HashMap;

fn tally(counts: &HashMap<u64, f64>) -> f64 {
    let mut sum = 0.0;
    for (_k, v) in counts.iter() {            // D1: hash-ordered fold
        sum += v;
    }
    sum
}

fn stamp() -> std::time::Instant {
    std::time::Instant::now()                 // D2: wall clock
}

fn peek(state: &std::sync::Mutex<u32>) -> u32 {
    *state.lock().unwrap()                    // C1: poison panic
}

fn bump(flag: &std::sync::atomic::AtomicU32) {
    flag.fetch_add(1, std::sync::atomic::Ordering::Relaxed) // C2
        ;
}
"#;

    let diags = analyze_source("crates/core/src/example.rs", bad, &config);
    println!("== findings on the seeded snippet ==");
    for d in &diags {
        println!("  {d}");
    }
    assert!(diags.iter().any(|d| d.rule == RuleId::D1));
    assert!(diags.iter().any(|d| d.rule == RuleId::D2));
    assert!(diags.iter().any(|d| d.rule == RuleId::C1));
    assert!(diags.iter().any(|d| d.rule == RuleId::C2));

    // The same C2 site with a reasoned pragma passes clean — and the
    // reason is mandatory, so the suppression documents itself.
    let annotated = r#"
fn bump(flag: &std::sync::atomic::AtomicU32) {
    // jxp-analyze: allow(C2, reason = "pure event counter, merged commutatively")
    flag.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
}
"#;
    let diags = analyze_source("crates/core/src/example.rs", annotated, &config);
    println!("\n== same atomic with a reasoned allow(C2) pragma ==");
    println!("  findings: {}", diags.len());
    assert!(diags.is_empty());

    // Path gating: the identical hash-map fold outside a
    // determinism-critical module is fine (lookup order there never
    // reaches a score).
    let elsewhere = r#"
use std::collections::HashMap;

fn tally(counts: &HashMap<u64, f64>) -> f64 {
    counts.iter().map(|(_, v)| v).sum()
}
"#;
    let diags = analyze_source("crates/minerva/src/example.rs", elsewhere, &config);
    println!("\n== same fold outside the D1-critical set ==");
    println!("  findings: {}", diags.len());
    assert!(diags.is_empty());

    println!("\nok: all rule-engine assertions held");
}
