//! Quickstart: three peers collaboratively approximate global PageRank.
//!
//! Builds a tiny 8-page "Web", splits it across three overlapping peers,
//! lets them meet, and watches the JXP scores converge to the centralized
//! PageRank — from below, as Theorem 5.3 guarantees.
//!
//! Run with: `cargo run --release --example quickstart`

use jxp::core::{meeting, JxpConfig, JxpPeer};
use jxp::pagerank::{pagerank, PageRankConfig};
use jxp::webgraph::{GraphBuilder, PageId, Subgraph};

fn main() {
    // A small Web: page 0 is the hub everyone links to.
    let mut b = GraphBuilder::new();
    for (src, dst) in [
        (1, 0),
        (2, 0),
        (3, 0),
        (4, 0),
        (5, 0),
        (0, 1),
        (1, 2),
        (2, 3),
        (3, 4),
        (4, 5),
        (5, 6),
        (6, 7),
        (7, 0),
        (6, 0),
    ] {
        b.add_edge(PageId(src), PageId(dst));
    }
    let web = b.build();
    let n = web.num_nodes() as u64;

    // Ground truth nobody in the P2P network gets to see.
    let truth = pagerank(&web, &PageRankConfig::default());
    println!("true PageRank (centralized): ");
    for p in web.nodes() {
        println!("  page {p}: {:.4}", truth.score(p));
    }

    // Three autonomous peers with overlapping crawls.
    let cfg = JxpConfig::default(); // light-weight merging + take-max
    let mut peers = vec![
        JxpPeer::new(
            Subgraph::from_pages(&web, (0..4).map(PageId)),
            n,
            cfg.clone(),
        ),
        JxpPeer::new(
            Subgraph::from_pages(&web, (2..6).map(PageId)),
            n,
            cfg.clone(),
        ),
        JxpPeer::new(Subgraph::from_pages(&web, [6, 7, 0].map(PageId)), n, cfg),
    ];

    println!(
        "\npeer 0's initial view of hub page 0: {:.4} (underestimate)",
        peers[0].score(PageId(0)).unwrap()
    );

    // Random-ish meeting schedule: every pair meets repeatedly.
    for round in 1..=30 {
        for (i, j) in [(0usize, 1usize), (1, 2), (0, 2)] {
            let (lo, hi) = (i.min(j), i.max(j));
            let (left, right) = peers.split_at_mut(hi);
            meeting::meet(&mut left[lo], &mut right[0]);
        }
        if round % 10 == 0 {
            let alpha = peers[0].score(PageId(0)).unwrap();
            println!(
                "after {:>2} rounds: peer 0 sees page 0 at {:.4} (true {:.4}), world node holds {:.4}",
                round,
                alpha,
                truth.score(PageId(0)),
                peers[0].world_score()
            );
        }
    }

    // Every peer ends up agreeing with the centralized computation.
    println!("\nfinal JXP scores vs truth:");
    let mut worst = 0.0f64;
    for peer in &peers {
        for (i, &alpha) in peer.scores().iter().enumerate() {
            let page = peer.graph().page_at(i);
            let pi = truth.score(page);
            worst = worst.max((alpha - pi).abs());
            assert!(
                alpha <= pi + 1e-6,
                "Theorem 5.3 violated: {alpha} > {pi} for {page:?}"
            );
        }
    }
    for p in web.nodes().take(4) {
        let est = peers
            .iter()
            .filter_map(|peer| peer.score(p))
            .fold(f64::NAN, f64::max);
        println!("  page {p}: jxp {est:.4} vs true {:.4}", truth.score(p));
    }
    println!("\nmax |JXP − PR| over all peers and pages: {worst:.5}");
    assert!(worst < 0.01, "did not converge: {worst}");
    println!("JXP converged to centralized PageRank without any peer seeing the whole graph.");
}
