//! Asynchronous JXP: independent peer clocks, message latency, loss.
//!
//! The synchronous simulator idealizes a meeting as an atomic exchange.
//! Real P2P networks deliver payloads late, out of order, or not at all.
//! This example runs the discrete-event simulator with aggressive latency
//! and 30% message loss and shows JXP still marching toward the
//! centralized PageRank.
//!
//! Run with: `cargo run --release --example async_network`

use jxp::p2pnet::event::{EventNetwork, EventSimConfig};
use jxp::pagerank::{metrics, pagerank, PageRankConfig};
use jxp::webgraph::generators::{CategorizedGraph, CategorizedParams};
use jxp::webgraph::{PageId, Subgraph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let cg = CategorizedGraph::generate(
        &CategorizedParams {
            num_categories: 5,
            nodes_per_category: 400,
            intra_out_per_node: 4,
            cross_fraction: 0.15,
        },
        &mut StdRng::seed_from_u64(71),
    );
    let n = cg.graph.num_nodes();
    let truth = pagerank(&cg.graph, &PageRankConfig::default()).into_scores();
    let truth_ranking = jxp::core::evaluate::centralized_ranking(&truth);

    // 20 overlapping fragments covering the graph.
    let mut rng = StdRng::seed_from_u64(72);
    let mut pages: Vec<Vec<PageId>> = vec![Vec::new(); 20];
    for p in 0..n as u32 {
        pages[rng.gen_range(0..20usize)].push(PageId(p));
        if rng.gen_bool(0.3) {
            pages[rng.gen_range(0..20usize)].push(PageId(p));
        }
    }
    let fragments: Vec<Subgraph> = pages
        .into_iter()
        .map(|ps| Subgraph::from_pages(&cg.graph, ps))
        .collect();

    let config = EventSimConfig {
        mean_meeting_interval: 10.0,
        mean_latency: 4.0,     // latency ≈ 40% of the meeting interval
        drop_probability: 0.3, // drop almost a third of all payloads
        ..Default::default()
    };
    println!(
        "{} pages, 20 peers; mean latency {}, drop probability {}",
        n, config.mean_latency, config.drop_probability
    );
    let mut net = EventNetwork::new(fragments, n as u64, config, 73);

    println!(
        "\n{:>10} {:>10} {:>9} {:>9} {:>10}",
        "sim clock", "delivered", "dropped", "MB", "footrule"
    );
    for epoch in 1..=8 {
        net.run_until(epoch as f64 * 400.0);
        let f = metrics::footrule_distance(&net.total_ranking(), &truth_ranking, 100);
        println!(
            "{:>10.0} {:>10} {:>9} {:>9.1} {:>10.4}",
            net.clock(),
            net.stats().delivered,
            net.stats().dropped,
            net.stats().bytes as f64 / 1e6,
            f
        );
    }
    for p in net.peers() {
        jxp::core::invariants::check_mass_conservation(p).unwrap();
    }
    println!("\nevery peer still holds a valid score distribution despite the losses;");
    println!("convergence only needs fairness-in-expectation, not reliable delivery.");
}
