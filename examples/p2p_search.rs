//! P2P Web search with JXP-boosted ranking (the paper's §6.3 scenario).
//!
//! Builds a Minerva-style network — 40 peers from 10 categories, each
//! hosting 3 of its category's 4 fragments — runs JXP to get authority
//! scores, then answers queries two ways: plain tf·idf, and the paper's
//! `0.6·tf·idf + 0.4·JXP` fusion. Prints the per-query precision@10 of
//! both rankings.
//!
//! Run with: `cargo run --release --example p2p_search`

use jxp::core::JxpConfig;
use jxp::minerva::eval::{averages, table2};
use jxp::minerva::{Corpus, CorpusParams, PeerIndex};
use jxp::p2pnet::assign::minerva_fragments;
use jxp::p2pnet::{Network, NetworkConfig};
use jxp::pagerank::{pagerank, PageRankConfig};
use jxp::webgraph::generators::{CategorizedGraph, CategorizedParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let cg = CategorizedGraph::generate(
        &CategorizedParams {
            num_categories: 10,
            nodes_per_category: 500,
            intra_out_per_node: 5,
            cross_fraction: 0.1,
        },
        &mut StdRng::seed_from_u64(21),
    );
    let truth = pagerank(&cg.graph, &PageRankConfig::default()).into_scores();

    // 40 search-engine peers with high same-topic overlap.
    let fragments = minerva_fragments(&cg, 4, &mut StdRng::seed_from_u64(22));
    println!(
        "{} documents across {} peers (each hosts 3/4 of its category)",
        cg.graph.num_nodes(),
        fragments.len()
    );

    // The P2P network computes authority scores with JXP.
    let mut net = Network::new(
        fragments.clone(),
        cg.graph.num_nodes() as u64,
        NetworkConfig {
            jxp: JxpConfig::optimized(),
            ..Default::default()
        },
        23,
    );
    net.run(800);
    let jxp_ranking = net.total_ranking();
    println!("JXP ran for {} meetings", net.meetings());

    // Each peer indexes its own documents.
    let corpus = Corpus::generate(
        &cg,
        &truth,
        CorpusParams::default(),
        &mut StdRng::seed_from_u64(24),
    );
    let indexes: Vec<PeerIndex> = fragments
        .iter()
        .map(|f| PeerIndex::build(f, &corpus))
        .collect();

    // Fifteen topical queries, routed to the 6 most promising peers each.
    let queries = corpus.make_queries(15, &mut StdRng::seed_from_u64(25));
    let rows = table2(
        &corpus,
        &indexes,
        &jxp_ranking,
        &queries,
        6,
        50,
        10,
        (0.6, 0.4),
    );

    println!(
        "\n{:<12} {:>8} {:>22}",
        "query", "tf*idf", "0.6 tf*idf + 0.4 JXP"
    );
    for r in &rows {
        println!(
            "{:<12} {:>7.0}% {:>21.0}%",
            r.query,
            r.tfidf_precision * 100.0,
            r.fused_precision * 100.0
        );
    }
    let (t, f) = averages(&rows);
    println!("{:<12} {:>7.0}% {:>21.0}%", "average", t * 100.0, f * 100.0);
    println!(
        "\nauthority-aware ranking changed average precision@10 by {:+.0} points",
        (f - t) * 100.0
    );

    // Bonus — the paper's §7 future-work item, implemented: JXP scores can
    // also guide *query routing* (which peers to ask), not just result
    // ranking.
    use jxp::minerva::routing::{route, route_with_authority};
    let q = &queries[0];
    let plain = route(&indexes, q, 3);
    let guided = route_with_authority(&indexes, q, 3, &jxp_ranking, 0.5);
    println!(
        "\nquery {}: df-based routing asks peers {:?}; JXP-guided routing asks {:?}",
        q.name, plain, guided
    );
}
