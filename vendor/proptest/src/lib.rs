#![deny(missing_docs)]
//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment of this repository has no access to a crates.io
//! registry, so the handful of external dependencies are vendored as
//! minimal API-compatible implementations (see `vendor/README.md`). This
//! crate supports the subset the workspace's property tests use:
//!
//! * the [`Strategy`] trait with range, tuple, [`Just`] and
//!   [`collection::vec`] strategies plus `prop_map` / `prop_flat_map`;
//! * the [`proptest!`] macro running each property over a configurable
//!   number of deterministically seeded random cases;
//! * [`prop_assert!`] / [`prop_assert_eq!`] reporting the failing case.
//!
//! Two deliberate simplifications against the real crate: failing inputs
//! are **not shrunk** (the failing case's seed and index are printed
//! instead, which is enough to reproduce it deterministically), and the
//! case RNG is seeded from the test's module path and name rather than a
//! persisted regression file.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod collection;

/// Runner configuration: how many random cases each property executes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property case (carried out of the test body by
/// [`prop_assert!`] and friends).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    /// Human-readable description of the violated assertion.
    pub message: String,
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Value-generation strategy: maps a seeded RNG to a test input.
pub trait Strategy {
    /// The generated input type.
    type Value;

    /// Generate one input.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Derive a second strategy from each generated value.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy yielding a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut StdRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

/// Deterministic per-case RNG: a stable hash of the test's identity and
/// the case index, so reruns generate identical inputs without any
/// persisted state.
pub fn case_rng(test_id: &str, case: u32) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_id.bytes().chain(case.to_le_bytes()) {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h)
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError {
                message: format!($($fmt)+),
            });
        }
    };
}

/// Fail the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err($crate::TestCaseError {
                message: format!($($fmt)+),
            });
        }
    }};
}

/// Fail the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} != {:?}", a, b);
    }};
}

/// Define property tests: each `fn` runs its body over `cases` random
/// inputs drawn from the given strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let test_id = concat!(module_path!(), "::", stringify!($name));
                for case in 0..config.cases {
                    let mut rng = $crate::case_rng(test_id, case);
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: Result<(), $crate::TestCaseError> = (|| {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    if let Err(e) = outcome {
                        panic!(
                            "property {} failed at case {}/{}: {}",
                            stringify!($name),
                            case,
                            config.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn case_rng_is_deterministic_and_distinct() {
        use rand::RngCore;
        let a = crate::case_rng("t", 0).next_u64();
        let b = crate::case_rng("t", 0).next_u64();
        let c = crate::case_rng("t", 1).next_u64();
        let d = crate::case_rng("u", 0).next_u64();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }

    #[test]
    fn strategies_compose() {
        let mut rng = crate::case_rng("compose", 0);
        let s = (1u32..5).prop_flat_map(|n| (Just(n), crate::collection::vec(0..n, 1..=4usize)));
        for _ in 0..100 {
            let (n, v) = s.generate(&mut rng);
            assert!((1..5).contains(&n));
            assert!((1..=4).contains(&v.len()));
            assert!(v.iter().all(|&x| x < n));
        }
        let m = (0..10u32).prop_map(|x| x * 2);
        for _ in 0..50 {
            assert_eq!(m.generate(&mut rng) % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn addition_commutes(a in 0..1000u32, b in 0..1000u32) {
            prop_assert_eq!(a + b, b + a);
            prop_assert!(a + b >= a, "sum shrank");
            prop_assert_ne!(a + b, a.wrapping_sub(1).wrapping_sub(b));
        }

        #[test]
        fn tuple_patterns_bind((x, y) in (0..10u32, 0..10u32), scale in 1..4usize) {
            prop_assert!(x < 10 && y < 10);
            prop_assert!((1..4).contains(&scale));
        }
    }

    #[test]
    fn failing_property_panics_with_case_info() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(4))]

                #[allow(unused)]
                fn always_fails(x in 0..10u32) {
                    prop_assert!(x > 100, "x was {}", x);
                }
            }
            always_fails();
        });
        let msg = *result
            .expect_err("should panic")
            .downcast::<String>()
            .unwrap();
        assert!(msg.contains("always_fails"), "{msg}");
        assert!(msg.contains("case 0/4"), "{msg}");
    }
}
