//! Collection strategies.

use crate::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// Length specification for [`vec`]: an exact length or a length range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    max: usize, // inclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty length range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty length range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Strategy for `Vec<T>` with element strategy `element` and a length
/// drawn from `len`.
pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        len: len.into(),
    }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let n = rng.gen_range(self.len.min..=self.len.max);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_respect_all_range_forms() {
        let mut rng = crate::case_rng("vec", 0);
        for _ in 0..200 {
            assert_eq!(vec(0..5u32, 3usize).generate(&mut rng).len(), 3);
            let l = vec(0..5u32, 1..4usize).generate(&mut rng).len();
            assert!((1..4).contains(&l));
            let l = vec(0..5u32, 2..=6usize).generate(&mut rng).len();
            assert!((2..=6).contains(&l));
        }
    }
}
