#![deny(missing_docs)]
//! Offline stand-in for the [`bytes`](https://crates.io/crates/bytes) crate.
//!
//! The build environment of this repository has no access to a crates.io
//! registry, so the handful of external dependencies are vendored as
//! minimal API-compatible implementations (see `vendor/README.md`). This
//! crate covers exactly the subset the workspace uses: the [`Buf`] /
//! [`BufMut`] cursor traits with little-endian accessors, a growable
//! [`BytesMut`] write buffer, and the frozen [`Bytes`] handle.
//!
//! Unlike the real crate there is no reference-counted zero-copy
//! machinery: [`Bytes`] owns a plain `Vec<u8>`. Every operation is
//! semantically identical for the encode/decode workloads here.

use std::ops::Deref;

/// Read cursor over a contiguous byte sequence.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// View of the unconsumed bytes.
    fn chunk(&self) -> &[u8];
    /// Consume `cnt` bytes.
    ///
    /// # Panics
    /// Panics if `cnt > remaining()`.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copy `dst.len()` bytes out of the buffer, consuming them.
    ///
    /// # Panics
    /// Panics if the buffer holds fewer than `dst.len()` bytes.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Consume one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Consume a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Consume a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Consume a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Consume a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "buffer underflow");
        *self = &self[cnt..];
    }
}

impl<B: Buf + ?Sized> Buf for &mut B {
    fn remaining(&self) -> usize {
        (**self).remaining()
    }

    fn chunk(&self) -> &[u8] {
        (**self).chunk()
    }

    fn advance(&mut self, cnt: usize) {
        (**self).advance(cnt)
    }
}

/// Write cursor that appends to a growable buffer.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Growable write buffer; freeze into an immutable [`Bytes`] when done.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Empty buffer with `cap` bytes pre-allocated.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// An immutable, contiguous byte sequence.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// Empty sequence.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copy a slice into an owned sequence.
    pub fn copy_from_slice(src: &[u8]) -> Self {
        Bytes { data: src.to_vec() }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copy out as a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data }
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.data.len()
    }

    fn chunk(&self) -> &[u8] {
        &self.data
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.data.len(), "buffer underflow");
        self.data.drain(..cnt);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_accessors() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u8(7);
        buf.put_u16_le(0xBEEF);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(u64::MAX - 1);
        buf.put_f64_le(0.25);
        buf.put_slice(b"xyz");
        let bytes = buf.freeze();
        let mut r: &[u8] = &bytes;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 0xBEEF);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), u64::MAX - 1);
        assert_eq!(r.get_f64_le(), 0.25);
        let mut tail = [0u8; 3];
        r.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xyz");
        assert!(!r.has_remaining());
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut r: &[u8] = &[1, 2];
        let _ = r.get_u32_le();
    }

    #[test]
    fn bytes_conversions() {
        let b = Bytes::copy_from_slice(&[1, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
        assert_eq!(&b[..], &[1, 2, 3]);
        let v: Bytes = vec![9u8].into();
        assert_eq!(&v[..], &[9]);
    }
}
