#![deny(missing_docs)]
//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! crate.
//!
//! The build environment of this repository has no access to a crates.io
//! registry (see `vendor/README.md`), so this crate supports the subset of
//! the criterion API the workspace's benches use: [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`] / [`Bencher::iter_batched`],
//! [`BenchmarkId`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! It is a plain wall-clock runner: each benchmark is warmed up briefly,
//! then timed over enough iterations to fill a short measurement window,
//! and the mean time per iteration is printed. There is no outlier
//! rejection, no regression analysis, and no HTML report — good enough to
//! keep benches compiling and give ballpark numbers offline.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

const WARM_UP_ITERS: u64 = 3;
const TARGET_MEASURE: Duration = Duration::from_millis(200);
const MAX_MEASURE_ITERS: u64 = 10_000;

/// Identifier for one benchmark within a group: a function name and/or a
/// parameter value.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Id combining a function name with a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// How much setup output [`Bencher::iter_batched`] keeps alive at once.
/// The distinction is meaningless for this runner (every iteration gets a
/// fresh batch); the variants exist for source compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Timing handle passed to every benchmark closure.
pub struct Bencher {
    /// Mean wall-clock time per iteration, filled in by `iter`/`iter_batched`.
    elapsed_per_iter: Option<Duration>,
}

impl Bencher {
    /// Time `routine` over repeated calls.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..WARM_UP_ITERS {
            black_box(routine());
        }
        let mut iters: u64 = 0;
        let start = Instant::now();
        loop {
            black_box(routine());
            iters += 1;
            if start.elapsed() >= TARGET_MEASURE || iters >= MAX_MEASURE_ITERS {
                break;
            }
        }
        self.elapsed_per_iter = Some(start.elapsed() / iters as u32);
    }

    /// Time `routine` over repeated calls, excluding the time spent in
    /// `setup` producing each call's fresh input.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        for _ in 0..WARM_UP_ITERS {
            black_box(routine(setup()));
        }
        let mut iters: u64 = 0;
        let mut busy = Duration::ZERO;
        let start = Instant::now();
        loop {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            busy += t.elapsed();
            iters += 1;
            if start.elapsed() >= TARGET_MEASURE || iters >= MAX_MEASURE_ITERS {
                break;
            }
        }
        self.elapsed_per_iter = Some(busy / iters as u32);
    }
}

fn run_one(label: &str, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        elapsed_per_iter: None,
    };
    f(&mut b);
    match b.elapsed_per_iter {
        Some(d) => println!("bench {label:<48} {d:>12.2?}/iter"),
        None => println!("bench {label:<48} (no measurement)"),
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark in this group.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(&mut self, id: impl Display, f: F) {
        run_one(&format!("{}/{}", self.name, id), f);
    }

    /// Run one parameterized benchmark in this group.
    pub fn bench_with_input<I, F: FnOnce(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: F,
    ) {
        run_one(&format!("{}/{}", self.name, id), |b| f(b, input));
    }

    /// Finish the group (a no-op here; real criterion emits the report).
    pub fn finish(self) {}
}

/// Benchmark runner.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(&mut self, id: impl Display, f: F) {
        run_one(&id.to_string(), f);
    }
}

/// Bundle benchmark functions into a single runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point invoking one or more [`criterion_group!`] runners.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_reports_a_measurement() {
        let mut b = Bencher {
            elapsed_per_iter: None,
        };
        b.iter(|| black_box(2u64 + 2));
        assert!(b.elapsed_per_iter.is_some());
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut b = Bencher {
            elapsed_per_iter: None,
        };
        b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput);
        assert!(b.elapsed_per_iter.is_some());
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter(99).to_string(), "99");
    }

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("sample", |b| b.iter(|| black_box(1)));
    }

    criterion_group!(group_runs, sample_bench);

    #[test]
    fn group_macro_builds_runner() {
        group_runs();
    }
}
