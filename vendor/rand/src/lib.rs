#![deny(missing_docs)]
//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment of this repository has no access to a crates.io
//! registry, so the handful of external dependencies are vendored as
//! minimal API-compatible implementations (see `vendor/README.md`). This
//! crate provides the subset the workspace uses: [`rngs::StdRng`] (seeded
//! deterministically via [`SeedableRng::seed_from_u64`]), the [`Rng`]
//! extension trait (`gen_range`, `gen_bool`, `gen`), and
//! [`seq::SliceRandom`] (`shuffle`, `choose_multiple`).
//!
//! The generator is **xoshiro256++**, not the real crate's ChaCha12 —
//! output streams differ from upstream `rand 0.8`, but every consumer in
//! this workspace only relies on determinism-per-seed and statistical
//! uniformity, never on exact stream values.

/// Core generator interface: a source of uniformly random bits.
pub trait RngCore {
    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be constructed from a small deterministic seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose entire stream is a function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// SplitMix64 step — used to expand a `u64` seed into generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Unbiased uniform draw from `[0, span)` by rejection sampling.
fn uniform_u64(rng: &mut impl RngCore, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Accept only draws below the largest multiple of `span`, so the
    // final modulo is exactly uniform.
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

/// Uniform draw from `[0, 1)` with 53 bits of precision.
fn uniform_f64(rng: &mut impl RngCore) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A half-open range that `Rng::gen_range` can sample from.
pub trait SampleRange<T> {
    /// Draw one uniform sample.
    fn sample_single(self, rng: &mut impl RngCore) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single(self, rng: &mut impl RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let v = uniform_u64(rng, span);
                (self.start as i128 + v as i128) as $t
            }
        }

        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single(self, rng: &mut impl RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let v = uniform_u64(rng, span + 1);
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single(self, rng: &mut impl RngCore) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let v = self.start + (self.end - self.start) * uniform_f64(rng);
        // Floating rounding may hit `end`; clamp back into the half-open
        // interval.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample_single(self, rng: &mut impl RngCore) -> f32 {
        let v = (std::ops::Range {
            start: self.start as f64,
            end: self.end as f64,
        })
        .sample_single(rng) as f32;
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_single(self, rng: &mut impl RngCore) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        start + (end - start) * uniform_f64(rng)
    }
}

impl SampleRange<f32> for std::ops::RangeInclusive<f32> {
    fn sample_single(self, rng: &mut impl RngCore) -> f32 {
        (*self.start() as f64..=*self.end() as f64).sample_single(rng) as f32
    }
}

/// A type `Rng::gen` can produce from the standard uniform distribution.
pub trait StandardSample {
    /// Draw one sample.
    fn standard_sample(rng: &mut impl RngCore) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample(rng: &mut impl RngCore) -> Self {
        uniform_f64(rng)
    }
}

impl StandardSample for f32 {
    fn standard_sample(rng: &mut impl RngCore) -> Self {
        uniform_f64(rng) as f32
    }
}

impl StandardSample for u32 {
    fn standard_sample(rng: &mut impl RngCore) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for u64 {
    fn standard_sample(rng: &mut impl RngCore) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for bool {
    fn standard_sample(rng: &mut impl RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// User-facing extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a half-open (or inclusive) range.
    ///
    /// # Panics
    /// Panics on an empty range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of [0, 1]");
        uniform_f64(self) < p
    }

    /// Sample from the standard uniform distribution of `T`.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard_sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: **xoshiro256++**.
    ///
    /// Small, fast, passes BigCrush; all simulator randomness flows
    /// through it, seeded explicitly for reproducible experiments.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; splitmix of any seed
            // cannot produce four zeros, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Random selection and permutation over slices.

    use super::{uniform_u64, RngCore};

    /// Shuffling and sampling-without-replacement over slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// `amount` distinct elements in random order (all of them, if the
        /// slice is shorter than `amount`).
        fn choose_multiple<'a, R: RngCore>(
            &'a self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_u64(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose_multiple<'a, R: RngCore>(
            &'a self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&'a T> {
            let amount = amount.min(self.len());
            // Partial Fisher–Yates over an index vector.
            let mut idx: Vec<usize> = (0..self.len()).collect();
            for i in 0..amount {
                let j = i + uniform_u64(rng, (idx.len() - i) as u64) as usize;
                idx.swap(i, j);
            }
            idx[..amount]
                .iter()
                .map(|&i| &self[i])
                .collect::<Vec<_>>()
                .into_iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(va[0], c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0..2.0f64);
            assert!((-2.0..2.0).contains(&f));
            let i = rng.gen_range(0..=5u32);
            assert!(i <= 5);
        }
        // Tiny spans stay exact.
        assert_eq!(rng.gen_range(7..8u32), 7);
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn gen_bool_edge_cases() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!(0..1000).any(|_| rng.gen_bool(0.0)));
        assert!((0..1000).all(|_| rng.gen_bool(1.0)));
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "{hits}");
    }

    #[test]
    fn standard_samples_are_in_range() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
    }

    #[test]
    fn choose_multiple_is_distinct_and_complete_when_short() {
        let mut rng = StdRng::seed_from_u64(6);
        let v: Vec<u32> = (0..50).collect();
        let picked: Vec<u32> = v.choose_multiple(&mut rng, 10).copied().collect();
        assert_eq!(picked.len(), 10);
        let mut dedup = picked.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 10, "duplicates in sample");
        let all: Vec<u32> = v.choose_multiple(&mut rng, 500).copied().collect();
        assert_eq!(all.len(), 50);
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(8);
        let _ = rng.gen_range(5..5usize);
    }
}
